"""Unified command-line entry point: ``python -m repro <command>``.

One dispatcher for every experiment driver plus ad-hoc grids through
the parallel engine::

    python -m repro fig6 --cores 16 64 --scale 0.5 --workers 8
    python -m repro chaos --cores 16 --check
    python -m repro run --config msa-omu-2 --workload streamcluster --check
    python -m repro verify --selftest
    python -m repro verify --workload fluidanimate --config msa-omu-2
    python -m repro sweep --configs pthread msa-omu-2 \\
        --workloads canneal swaptions --workers 4 --csv out.csv
    python -m repro traffic --scenario bursty --config msa-omu-2 --scale 2
    python -m repro traffic --sweep --loads 0.5 1 2 4 \\
        --csv load.csv --html load.html --cache-dir ~/.cache/repro
    python -m repro dse --axis msa.entries_per_tile=1,2,4 \\
        --axis omu.n_counters=2,4 --strategy halving --rungs 3 \\
        --cache-dir ~/.cache/repro --csv dse.csv
    python -m repro describe
    python -m repro obs --config msa-omu-2 --workload streamcluster \\
        --trace trace.json --metrics metrics.prom --html run.html
    python -m repro report --cache-dir ~/.cache/repro \\
        --baseline pthread --out report.html
    python -m repro serve --cache-dir ~/.cache/repro --workers 4
    python -m repro submit --configs pthread msa-omu-2 \\
        --workloads canneal --server http://127.0.0.1:8765
    python -m repro status <sweep-id> --server http://127.0.0.1:8765
    python -m repro fetch <sweep-id> --csv out.csv
    python -m repro all --workers 8 --cache-dir ~/.cache/repro

The ``serve``/``submit``/``status``/``fetch`` quartet runs sweeps as a
service: one long-lived server owns the cache and the worker fleet, any
number of clients submit grids and fetch byte-identical results over
HTTP (``--server`` or ``REPRO_SERVER``).  See docs/SERVICE.md.

``--check`` (on run/sweep/chaos) attaches every :mod:`repro.verify`
invariant monitor to each simulation; ``verify`` is the checker-first
entry point (structured report, exit status by verdict).

Engine flags are shared by every command: ``--workers`` fans grid
points out across processes, ``--cache-dir`` enables the
content-addressed result cache (repeat runs are free), ``--manifest``
makes a sweep resumable after a crash or ^C, and ``--progress`` prints
per-point completion lines with an ETA.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments

FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9")
COMMANDS = ("table1",) + FIGURES + (
    "headline", "chaos", "run", "verify", "sweep", "traffic", "dse",
    "describe", "perf", "obs", "report", "fsck", "chaos-harness", "serve",
    "submit", "status", "fetch", "all",
)


def _engine_kwargs(args) -> dict:
    return {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "progress": args.progress,
    }


def _dispatch(name: str, args) -> object:
    engine = _engine_kwargs(args)
    if name == "table1":
        return experiments.table1()
    if name == "fig5":
        return experiments.fig5(cores=args.cores, **engine)
    if name == "fig6":
        result = experiments.fig6(cores=args.cores, scale=args.scale, **engine)
        if args.csv:
            experiments.export_fig6_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
        return result
    if name == "fig7":
        return experiments.fig7(cores=args.cores, scale=args.scale, **engine)
    if name == "fig8":
        return experiments.fig8(cores=args.cores, scale=args.scale, **engine)
    if name == "fig9":
        return experiments.fig9(
            n_cores=max(args.cores), scale=args.scale, **engine
        )
    if name == "headline":
        return experiments.headline(
            n_cores=max(args.cores), scale=args.scale, **engine
        )
    if name == "chaos":
        from repro.verify import DEFAULT_MONITORS

        return experiments.chaos(
            n_cores=min(args.cores),
            scale=args.scale,
            checkers=DEFAULT_MONITORS if getattr(args, "check", False) else (),
            **engine,
        )
    raise ValueError(f"unknown command {name!r}")


def _run_one(args) -> int:
    from repro import api

    result = api.run(
        args.config,
        args.workload,
        cores=args.cores[0] if isinstance(args.cores, list) else args.cores,
        seed=args.seed,
        scale=args.scale,
        checkers=True if args.check else (),
        raise_violations=False,
    )
    print(result.describe())
    if result.check_report is not None and not result.check_report["ok"]:
        from repro.verify import CheckReport

        print(CheckReport.from_dict(result.check_report).describe())
        return 1
    return 0


def _run_verify(args) -> int:
    from repro.verify import (
        CheckReport,
        DEFAULT_MONITORS,
        differential,
        run_selftest,
    )

    if args.selftest:
        report = run_selftest(print_out=True)
        caught = any(
            v.invariant == "mutual-exclusion" for v in report.violations
        )
        return 0 if caught else 1
    if args.differential:
        diff = differential(
            workload=args.workload or "streamcluster",
            cores=args.cores[0] if isinstance(args.cores, list) else args.cores,
            scale=args.scale,
            seed=args.seed,
        )
        print(diff.describe())
        return 0 if diff.ok else 1

    from repro import api

    machine = api.build(
        args.config,
        cores=args.cores[0] if isinstance(args.cores, list) else args.cores,
        seed=args.seed,
    )
    if args.trace:
        machine.tracer.enable("msa", "sched", "sync", "retry", "degrade")
    monitors = tuple(args.monitors) if args.monitors else DEFAULT_MONITORS
    result = api.run(
        machine,
        args.workload or "streamcluster",
        scale=args.scale,
        checkers=monitors,
        raise_violations=False,
    )
    report = CheckReport.from_dict(result.check_report)
    print(report.describe())
    if args.trace:
        machine.tracer.to_jsonl(args.trace)
        print(f"wrote trace to {args.trace}")
    return 0 if report.ok else 1


def _run_perf(args) -> int:
    from repro.perf import (
        SUITES,
        BenchPoint,
        compare,
        load_doc,
        render_table,
        run_suite,
        write_doc,
    )

    if args.points:
        try:
            points = [BenchPoint.parse(spec) for spec in args.points]
        except ValueError as exc:
            print(f"python -m repro perf: error: {exc}", file=sys.stderr)
            return 2
    else:
        points = SUITES[args.suite]
    doc = run_suite(
        points,
        repeat=args.repeat,
        seed=args.seed,
        label=args.label,
        profile=args.profile or 0,
        progress=args.progress,
    )
    baseline = load_doc(args.compare) if args.compare else None
    print(render_table(doc, baseline))
    if args.out:
        write_doc(doc, args.out)
        print(f"wrote {args.out}")
    if baseline is not None:
        result = compare(doc, baseline, threshold=args.threshold)
        print(result.describe())
        return 0 if result.ok else 1
    return 0


def _run_obs(args) -> int:
    from repro import api
    from repro.obs import render_run_report

    result, obs = api.observe(
        args.config,
        args.workload,
        cores=args.cores[0] if isinstance(args.cores, list) else args.cores,
        seed=args.seed,
        scale=args.scale,
        span_limit=args.span_limit,
        checkers=True if args.check else (),
        raise_violations=False,
    )
    print(result.describe())
    print(obs.describe())
    if args.spans:
        obs.to_jsonl(args.spans)
        print(f"wrote spans to {args.spans}")
    if args.trace:
        obs.to_chrome_trace(args.trace)
        print(f"wrote Chrome trace to {args.trace} (open in Perfetto)")
    if args.metrics:
        obs.registry.to_prometheus(args.metrics)
        print(f"wrote Prometheus metrics to {args.metrics}")
    if args.metrics_jsonl:
        obs.registry.to_jsonl(args.metrics_jsonl)
        print(f"wrote metrics JSONL to {args.metrics_jsonl}")
    if args.html:
        with open(args.html, "w") as f:
            f.write(render_run_report(result, obs))
        print(f"wrote HTML run report to {args.html}")
    if result.check_report is not None and not result.check_report["ok"]:
        return 1
    return 0


def _run_report(args) -> int:
    from repro.obs import report_from_cache

    bench_doc = None
    if args.bench:
        from repro.perf import load_doc

        bench_doc = load_doc(args.bench)
    out = report_from_cache(
        args.cache_dir,
        args.out,
        baseline=args.baseline,
        title=args.title,
        bench_doc=bench_doc,
    )
    print(f"wrote {out}")
    return 0


def _run_fsck(args) -> int:
    from pathlib import Path

    from repro.resilience import fsck

    if not Path(args.cache_dir).is_dir():
        print(
            f"python -m repro fsck: error: no cache directory at "
            f"{args.cache_dir!r} (a clean bill for a typo'd path would "
            "be a lie)",
            file=sys.stderr,
        )
        return 2
    report = fsck(
        args.cache_dir,
        manifest=args.manifest,
        repair=not args.no_repair,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _run_chaos_harness(args) -> int:
    from repro.resilience import chaos_harness

    result = chaos_harness(
        workdir=args.workdir,
        workers=args.workers if args.workers is not None else 3,
        seed=args.seed,
        scale=args.scale,
        cores=args.cores[0] if isinstance(args.cores, list) else args.cores,
        kill_interval_s=args.kill_interval,
        kill_first_leases=args.kill_leases,
        corrupt_interval_s=args.corrupt_interval,
        diskfull_puts=args.diskfull_puts,
        retries=args.retries,
        progress=args.progress,
    )
    print(result.describe())
    return 0 if result.ok else 1


def _run_sweep(args) -> int:
    from repro import api
    from repro.harness.sweep import add_request_metrics, add_speedups, to_csv

    checkers = ()
    if args.check:
        from repro.verify import DEFAULT_MONITORS

        checkers = DEFAULT_MONITORS
    points, stats = api.sweep(
        configs=args.configs,
        workloads=args.workloads,
        cores=tuple(args.cores),
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        manifest=args.manifest,
        progress=args.progress,
        return_stats=True,
        checkers=checkers,
    )
    if args.baseline:
        add_speedups(points, baseline_config=args.baseline)
    add_request_metrics(points)  # no-op unless traffic points are present
    text = to_csv(points, path=args.csv)
    if args.csv:
        print(f"wrote {args.csv} ({len(points)} points)")
    else:
        print(text, end="")
    print(f"engine: {stats.describe()}", file=sys.stderr)
    return 0


def _run_traffic(args) -> int:
    from repro import api
    from repro.traffic import TRAFFIC

    scenario = args.scenario
    if scenario in TRAFFIC:
        pass
    elif f"traffic.{scenario}" in TRAFFIC:
        scenario = f"traffic.{scenario}"
    else:
        print(
            f"python -m repro traffic: error: unknown scenario "
            f"{args.scenario!r}; options: {sorted(TRAFFIC)}",
            file=sys.stderr,
        )
        return 2
    checkers = ()
    if args.check:
        from repro.verify import DEFAULT_MONITORS

        checkers = DEFAULT_MONITORS
    fault_plan = None
    if args.chaos is not None:
        from repro.faults import drop_plan

        fault_plan = drop_plan(args.chaos, seed=args.seed)
    cores = args.cores[0] if isinstance(args.cores, list) else args.cores

    if not args.sweep:
        result = api.run(
            args.config,
            scenario,
            cores=cores,
            seed=args.seed,
            scale=args.scale,
            fault_plan=fault_plan,
            checkers=checkers,
            raise_violations=False,
        )
        print(result.describe())
        m = result.workload_metrics
        print(
            f"  traffic: {int(m['traffic.done'])}/{int(m['traffic.offered'])} "
            f"done, {int(m['traffic.shed'])} shed, "
            f"{int(m['traffic.timeout'])} timed out; sojourn "
            f"p50={m['traffic.p50']:.0f} p99={m['traffic.p99']:.0f} "
            f"p999={m['traffic.p999']:.0f} cy; "
            f"goodput {m['traffic.goodput_rpk']:.2f} req/kcy "
            f"(offered {m['traffic.offered_rpk']:.2f})"
        )
        if args.html:
            from repro.obs import render_run_report

            with open(args.html, "w") as f:
                f.write(render_run_report(result))
            print(f"wrote HTML run report to {args.html}")
        if result.check_report is not None and not result.check_report["ok"]:
            return 1
        return 0

    from repro.harness.sweep import to_csv

    points, stats = api.traffic(
        scenario=scenario,
        configs=args.configs,
        loads=args.loads,
        cores=cores,
        seed=args.seed,
        checkers=checkers,
        fault_plan=fault_plan,
        workers=args.workers,
        cache_dir=args.cache_dir,
        manifest=args.manifest,
        progress=args.progress,
        return_stats=True,
    )
    configs = sorted({p.config for p in points})
    loads = sorted({p.scale for p in points})
    by_key = {(p.config, p.scale): p for p in points}
    header = "load    " + "".join(f"{c:>24}" for c in configs)
    print(header)
    for load in loads:
        cells = []
        for config in configs:
            p = by_key.get((config, load))
            if p is None:
                cells.append(f"{'-':>24}")
                continue
            m = p.result.workload_metrics
            cells.append(
                f"{m['traffic.p99']:>10.0f}cy {m['traffic.goodput_rpk']:>8.2f}rpk"
            )
        print(f"x{load:<7g}" + "".join(cells))
    print("(cells: p99 sojourn, goodput in requests/kilocycle)")
    if args.csv:
        to_csv(points, path=args.csv)
        print(f"wrote {args.csv} ({len(points)} points)")
    if args.html:
        from repro.obs import render_sweep_report

        with open(args.html, "w") as f:
            f.write(
                render_sweep_report(
                    points,
                    title=f"repro traffic load sweep: {scenario}",
                )
            )
        print(f"wrote HTML sweep report to {args.html}")
    print(f"engine: {stats.describe()}", file=sys.stderr)
    return 0


def _parse_axis_value(text: str):
    """One axis value from the CLI: JSON scalars with bare-word
    booleans/null accepted (``true``, ``False``, ``null``, ``none``)."""
    import json as _json

    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    try:
        return _json.loads(text)
    except _json.JSONDecodeError:
        return text


def _run_dse(args) -> int:
    import json as _json

    from repro import api
    from repro.common.errors import ConfigError
    from repro.dse import SpaceSpec

    if args.space:
        if args.axis:
            raise ConfigError(
                "--space and --axis are mutually exclusive: the space "
                "file already declares its axes"
            )
        with open(args.space) as f:
            spec = SpaceSpec.from_dict(_json.load(f))
    else:
        if not args.axis:
            raise ConfigError(
                "declare the space with --axis name=v1,v2,... (repeatable) "
                "or --space FILE"
            )
        axes = []
        for text in args.axis:
            name, sep, values = text.partition("=")
            if not sep or not values:
                raise ConfigError(
                    f"--axis {text!r}: expected name=v1,v2,..."
                )
            axes.append(
                (name, [_parse_axis_value(v) for v in values.split(",")])
            )
        spec = SpaceSpec.make(
            axes,
            config=args.config,
            workloads=args.workloads,
            cores=args.cores,
            scale=args.scale,
            seed=args.seed,
        )
    strategy_kwargs = {}
    if args.strategy == "random":
        strategy_kwargs = {"n": args.samples, "seed": args.seed}
    elif args.strategy == "halving":
        strategy_kwargs = {"eta": args.eta, "rungs": args.rungs}
    result = api.dse(
        spec,
        strategy=args.strategy,
        baseline=args.baseline,
        chaos_rate=args.chaos,
        chaos_seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        server=args.server,
        progress=args.progress,
        **strategy_kwargs,
    )
    print(result.describe())
    if result.path:
        print(f"wrote DSE document to {result.path}")
    if args.csv:
        result.to_csv(path=args.csv)
        print(f"wrote {args.csv} ({len(result.records)} designs)")
    return 0


def _run_describe(args) -> int:
    from repro.harness.configs import CONFIG_NAMES
    from repro.traffic import ARRIVALS, TRAFFIC
    from repro.workloads import microbench
    from repro.workloads.kernels import KERNELS

    sections = (
        ("machine configurations", CONFIG_NAMES),
        ("kernels", sorted(KERNELS)),
        ("microbenches", sorted(microbench.MICROBENCHES)),
        ("traffic scenarios", sorted(TRAFFIC)),
        ("arrival processes", sorted(ARRIVALS)),
    )
    for title, names in sections:
        print(f"{title}:")
        for name in names:
            print(f"  {name}")
    return 0


def _run_serve(args) -> int:
    from repro.serve import Server

    server = Server(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        retries=args.retries,
        lease_s=args.lease,
        point_timeout_s=args.point_timeout,
        seed=args.seed,
    )
    server.serve_forever(
        on_ready=lambda s: print(
            f"repro serve: listening on {s.url} "
            f"(cache: {s.cache_dir}, workers: {s.workers})",
            flush=True,
        )
    )
    served = {k: v for k, v in server.counters.items() if v}
    print(f"repro serve: stopped ({served or 'no requests'})")
    return 0


def _run_submit(args) -> int:
    from repro.client import Client

    client = Client(args.server)
    sid = client.submit(
        configs=args.configs,
        workloads=args.workloads,
        cores=args.cores,
        scale=args.scale,
        seed=args.seed,
        check=not args.no_check,
    )
    sub = client.submissions[sid]
    print(sid)
    print(
        f"submitted to {client.base}: {sub['created_jobs']} new, "
        f"{sub['deduped_jobs']} already known",
        file=sys.stderr,
    )
    if args.wait:
        client.wait(sid)
        print(f"sweep {sid} done", file=sys.stderr)
    return 0


def _run_status(args) -> int:
    import json as _json

    from repro.client import Client

    doc = Client(args.server).status(args.sweep_id)
    print(_json.dumps(doc, indent=2, sort_keys=True))
    return 0 if doc["ok"] or not doc["done"] else 1


def _run_fetch(args) -> int:
    from repro.client import Client
    from repro.harness.sweep import add_speedups, to_csv

    client = Client(args.server)
    if args.wait:
        client.wait(args.sweep_id)
    points = client.fetch(args.sweep_id)
    if args.baseline:
        add_speedups(points, baseline_config=args.baseline)
    text = to_csv(points, path=args.csv)
    if args.csv:
        print(f"wrote {args.csv} ({len(points)} points)")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, cores_default=list(experiments.DEFAULT_CORES)):
        p.add_argument("--cores", type=int, nargs="+", default=cores_default)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes (default: REPRO_WORKERS or serial)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="result-cache directory (default: REPRO_CACHE_DIR or off)",
        )
        p.add_argument(
            "--progress", action="store_true", help="per-point progress + ETA"
        )

    for name in ("table1",) + FIGURES + ("headline", "chaos", "all"):
        p = sub.add_parser(name, help=f"run the {name} driver")
        add_common(p)
        if name in ("fig6", "all"):
            p.add_argument(
                "--csv", default=None, help="also write fig6 grid to this CSV"
            )
        if name in ("chaos", "all"):
            p.add_argument(
                "--check",
                action="store_true",
                help="attach every invariant monitor to each point",
            )

    p = sub.add_parser(
        "run", help="run one (config, workload) point and print its summary"
    )
    add_common(p, cores_default=[16])
    p.add_argument("--config", default="msa-omu-2")
    p.add_argument("--workload", default="streamcluster")
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--check",
        action="store_true",
        help="attach every invariant monitor; non-zero exit on violations",
    )

    p = sub.add_parser(
        "verify",
        help="invariant-checked run / checker selftest / differential oracle",
    )
    add_common(p, cores_default=[16])
    p.add_argument("--config", default="msa-omu-2")
    p.add_argument("--workload", default=None)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--monitors",
        nargs="+",
        default=None,
        help="monitor names to attach (default: all)",
    )
    p.add_argument(
        "--selftest",
        action="store_true",
        help="prove the checkers catch a deliberately broken lock",
    )
    p.add_argument(
        "--differential",
        action="store_true",
        help="cross-check sync outcomes across MSA/pthread/ideal configs",
    )
    p.add_argument(
        "--trace",
        default=None,
        help="also write the machine trace (JSONL) to this path",
    )

    p = sub.add_parser(
        "perf",
        help="microbenchmark the simulator itself (events/sec, RSS, "
        "regression gate); see docs/PERF.md",
    )
    p.add_argument(
        "--suite",
        choices=("smoke", "headline"),
        default="smoke",
        help="benchmark point set (default: smoke)",
    )
    p.add_argument(
        "--points",
        nargs="+",
        default=None,
        metavar="CFG:WL[:CORES[:SCALE]]",
        help="explicit points instead of a named suite",
    )
    p.add_argument("--repeat", type=int, default=3, help="repeats per point")
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--label", default="", help="free-form label stored in the JSON")
    p.add_argument("--out", default=None, help="write BENCH_*.json here")
    p.add_argument(
        "--compare",
        default=None,
        metavar="OLD.json",
        help="gate against this baseline document (non-zero exit on "
        "regression or determinism break)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed events/sec regression fraction (default 0.15)",
    )
    p.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="also cProfile each point and print the top N functions",
    )
    p.add_argument(
        "--progress", action="store_true", help="per-point progress lines"
    )

    p = sub.add_parser(
        "obs",
        help="run one observed point: spans, Chrome trace, Prometheus "
        "metrics, HTML run report; see docs/OBSERVABILITY.md",
    )
    add_common(p, cores_default=[16])
    p.add_argument("--config", default="msa-omu-2")
    p.add_argument("--workload", default="streamcluster")
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--span-limit",
        type=int,
        default=None,
        help="per-name retained-span cap (aggregates stay exact beyond it)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="also attach every invariant monitor (shares the probe)",
    )
    p.add_argument("--spans", default=None, help="write span JSONL here")
    p.add_argument(
        "--trace", default=None, help="write Chrome trace-event JSON here"
    )
    p.add_argument(
        "--metrics", default=None, help="write Prometheus text format here"
    )
    p.add_argument(
        "--metrics-jsonl", default=None, help="write metrics JSONL here"
    )
    p.add_argument("--html", default=None, help="write the HTML run report here")

    p = sub.add_parser(
        "report",
        help="render the cross-sweep HTML report from a result cache "
        "(no re-simulation)",
    )
    p.add_argument(
        "--cache-dir",
        required=True,
        help="result-cache root a sweep wrote (--cache-dir/REPRO_CACHE_DIR)",
    )
    p.add_argument("--out", default="report.html", help="output HTML path")
    p.add_argument(
        "--baseline",
        default=None,
        help="config name to compute speedups against (e.g. pthread)",
    )
    p.add_argument("--title", default=None, help="report title")
    p.add_argument(
        "--bench",
        default=None,
        metavar="BENCH.json",
        help="also include a repro.perf benchmark document section",
    )

    p = sub.add_parser(
        "fsck",
        help="scan and repair a result cache, sweep manifest, and job "
        "store (corrupt entries are evicted, torn manifests repaired)",
    )
    p.add_argument(
        "--cache-dir",
        required=True,
        help="result-cache root to scan (the job store next to it is "
        "scanned automatically)",
    )
    p.add_argument(
        "--manifest", default=None, help="sweep manifest to check/repair"
    )
    p.add_argument(
        "--no-repair",
        action="store_true",
        help="report only; leave corrupt files in place",
    )

    p = sub.add_parser(
        "chaos-harness",
        help="crash-safety gauntlet: SIGKILL workers mid-point, corrupt "
        "cache entries, fake disk-full -- then assert byte-identical "
        "convergence with an undisturbed serial run (see docs/HARNESS.md)",
    )
    add_common(p, cores_default=[4])
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--workdir",
        default=None,
        help="where the chaotic cache/manifest live (default: temp dir)",
    )
    p.add_argument(
        "--kill-interval",
        type=float,
        default=0.4,
        metavar="S",
        help="SIGKILL a random worker this often (seconds)",
    )
    p.add_argument(
        "--kill-leases",
        type=int,
        default=2,
        metavar="N",
        help="SIGKILL the owners of the first N observed leases "
        "(guaranteed mid-point kills, independent of point speed)",
    )
    p.add_argument(
        "--corrupt-interval",
        type=float,
        default=0.7,
        metavar="S",
        help="byte-flip a random cache entry this often (seconds)",
    )
    p.add_argument(
        "--diskfull-puts",
        type=int,
        default=1,
        metavar="N",
        help="each worker's first N cache writes fail with ENOSPC",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=9,
        help="per-point attempt budget before quarantine",
    )

    p = sub.add_parser(
        "sweep", help="ad-hoc grid through the parallel engine"
    )
    add_common(p, cores_default=[16])
    p.add_argument(
        "--configs", nargs="+", required=True, help="machine configurations"
    )
    p.add_argument(
        "--workloads", nargs="+", required=True, help="kernel registry names"
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--baseline", default=None, help="annotate speedups over this config"
    )
    p.add_argument("--manifest", default=None, help="resumable-sweep manifest path")
    p.add_argument("--csv", default=None, help="write results to this CSV path")
    p.add_argument(
        "--check",
        action="store_true",
        help="attach every invariant monitor to each point",
    )

    p = sub.add_parser(
        "traffic",
        help="open-loop traffic: one scenario run, or a cached load "
        "sweep (offered load vs p99 across sync backends); see "
        "docs/TRAFFIC.md",
    )
    add_common(p, cores_default=[16])
    p.add_argument(
        "--scenario",
        default="traffic.poisson",
        help="traffic scenario (poisson/bursty/diurnal/pareto, with or "
        "without the traffic. prefix)",
    )
    p.add_argument(
        "--config",
        default="msa-omu-2",
        help="machine configuration for a single (non --sweep) run",
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--sweep",
        action="store_true",
        help="run a load sweep (--loads x --configs) through the engine "
        "instead of a single scenario",
    )
    p.add_argument(
        "--configs",
        nargs="+",
        default=None,
        help="backends to compare in a sweep (default: msa0 msa-omu-2 "
        "pthread ideal)",
    )
    p.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="offered-load multipliers for a sweep (default: 0.5 1 2 4)",
    )
    p.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="RATE",
        help="also inject NoC message drops at this rate (repro.faults)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="attach every invariant monitor to each point",
    )
    p.add_argument("--manifest", default=None, help="resumable-sweep manifest path")
    p.add_argument("--csv", default=None, help="write sweep results to this CSV")
    p.add_argument(
        "--html", default=None, help="write the HTML report (run or sweep) here"
    )

    p = sub.add_parser(
        "dse",
        help="design-space exploration: search machine-parameter axes "
        "through the cached sweep stack and print the Pareto front "
        "(speedup vs hardware cost vs chaos tail); see docs/DSE.md",
    )
    add_common(p, cores_default=[16])
    p.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help="one design axis: a MachineParams field or dotted path "
        "with its values (repeatable), e.g. msa.entries_per_tile=1,2,4",
    )
    p.add_argument(
        "--space",
        default=None,
        metavar="FILE.json",
        help="load the whole space from a JSON space file instead "
        "(SpaceSpec.to_dict format)",
    )
    p.add_argument(
        "--config",
        default="msa-omu-2",
        help="base configuration the axes override",
    )
    p.add_argument(
        "--workloads",
        nargs="+",
        default=["streamcluster"],
        help="workloads every design is scored on",
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--strategy",
        choices=("grid", "random", "halving"),
        default="grid",
        help="search strategy (default: grid = exhaustive)",
    )
    p.add_argument(
        "--samples",
        type=int,
        default=8,
        metavar="N",
        help="designs sampled by --strategy random",
    )
    p.add_argument(
        "--eta",
        type=int,
        default=2,
        help="halving reduction factor (survivor fraction 1/eta)",
    )
    p.add_argument(
        "--rungs",
        type=int,
        default=3,
        help="halving rung count (first rung runs at scale/eta^(rungs-1))",
    )
    p.add_argument(
        "--baseline",
        default="pthread",
        help="config speedups are measured against",
    )
    p.add_argument(
        "--chaos",
        type=float,
        default=0.02,
        metavar="RATE",
        help="message-drop rate for the resilience objective "
        "(0 skips the chaos pass; required with --server)",
    )
    p.add_argument(
        "--server",
        default=None,
        help="run the sweeps on this service URL (default: REPRO_SERVER)",
    )
    p.add_argument("--csv", default=None, help="write per-design CSV here")

    sub.add_parser(
        "describe",
        help="list machine configurations, workload registries, and "
        "traffic scenarios",
    )

    def add_server(p):
        p.add_argument(
            "--server",
            default=None,
            help="service URL (default: REPRO_SERVER)",
        )

    p = sub.add_parser(
        "serve",
        help="run the experiment service: HTTP sweep submission over "
        "the shared cache and worker fleet (see docs/SERVICE.md)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="the service's durable state: result cache + job store "
        "(default: REPRO_CACHE_DIR; required)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or in-process)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="per-point retry budget before quarantine",
    )
    p.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="S",
        help="per-claim lease duration; a killed server's in-flight "
        "points are reclaimable after this long",
    )
    p.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock watchdog (seconds)",
    )
    p.add_argument("--seed", type=int, default=0, help="worker PRNG seed")

    p = sub.add_parser(
        "submit", help="submit a sweep grid to a running service"
    )
    add_server(p)
    p.add_argument("--configs", nargs="+", required=True)
    p.add_argument("--workloads", nargs="+", required=True)
    p.add_argument("--cores", type=int, nargs="+", default=[16])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--no-check", action="store_true", help="skip workload self-checks"
    )
    p.add_argument(
        "--wait", action="store_true", help="block until the sweep is done"
    )

    p = sub.add_parser(
        "status",
        help="print a submitted sweep's status document (JSON); exit 1 "
        "if it finished with failures",
    )
    add_server(p)
    p.add_argument("sweep_id")

    p = sub.add_parser(
        "fetch",
        help="fetch a finished sweep's results as CSV (byte-identical "
        "to a local run of the same grid)",
    )
    add_server(p)
    p.add_argument("sweep_id")
    p.add_argument(
        "--wait", action="store_true", help="long-poll until done first"
    )
    p.add_argument(
        "--baseline", default=None, help="annotate speedups over this config"
    )
    p.add_argument("--csv", default=None, help="write results to this CSV path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run_one(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "traffic":
        return _run_traffic(args)
    if args.command == "describe":
        return _run_describe(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "fsck":
        return _run_fsck(args)
    if args.command == "chaos-harness":
        return _run_chaos_harness(args)
    if args.command in ("dse", "serve", "submit", "status", "fetch"):
        from repro.common.errors import ReproError

        handler = {
            "dse": _run_dse,
            "serve": _run_serve,
            "submit": _run_submit,
            "status": _run_status,
            "fetch": _run_fetch,
        }[args.command]
        try:
            return handler(args)
        except ReproError as exc:
            # Config/service errors are user-facing (bad flag, dead
            # server, unknown sweep): one line, not a traceback.
            print(
                f"python -m repro {args.command}: error: {exc}",
                file=sys.stderr,
            )
            return 2
    names = (
        ("table1",) + FIGURES + ("headline", "chaos")
        if args.command == "all"
        else (args.command,)
    )
    for name in names:
        _dispatch(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
