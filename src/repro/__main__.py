"""Unified command-line entry point: ``python -m repro <command>``.

One dispatcher for every experiment driver plus ad-hoc grids through
the parallel engine::

    python -m repro fig6 --cores 16 64 --scale 0.5 --workers 8
    python -m repro chaos --cores 16
    python -m repro sweep --configs pthread msa-omu-2 \\
        --workloads canneal swaptions --workers 4 --csv out.csv
    python -m repro all --workers 8 --cache-dir ~/.cache/repro

Engine flags are shared by every command: ``--workers`` fans grid
points out across processes, ``--cache-dir`` enables the
content-addressed result cache (repeat runs are free), ``--manifest``
makes a sweep resumable after a crash or ^C, and ``--progress`` prints
per-point completion lines with an ETA.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments

FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9")
COMMANDS = ("table1",) + FIGURES + ("headline", "chaos", "sweep", "all")


def _engine_kwargs(args) -> dict:
    return {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "progress": args.progress,
    }


def _dispatch(name: str, args) -> object:
    engine = _engine_kwargs(args)
    if name == "table1":
        return experiments.table1()
    if name == "fig5":
        return experiments.fig5(cores=args.cores, **engine)
    if name == "fig6":
        result = experiments.fig6(cores=args.cores, scale=args.scale, **engine)
        if args.csv:
            experiments.export_fig6_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
        return result
    if name == "fig7":
        return experiments.fig7(cores=args.cores, scale=args.scale, **engine)
    if name == "fig8":
        return experiments.fig8(cores=args.cores, scale=args.scale, **engine)
    if name == "fig9":
        return experiments.fig9(
            n_cores=max(args.cores), scale=args.scale, **engine
        )
    if name == "headline":
        return experiments.headline(
            n_cores=max(args.cores), scale=args.scale, **engine
        )
    if name == "chaos":
        return experiments.chaos(
            n_cores=min(args.cores), scale=args.scale, **engine
        )
    raise ValueError(f"unknown command {name!r}")


def _run_sweep(args) -> int:
    from repro import api
    from repro.harness.sweep import add_speedups, to_csv

    points, stats = api.sweep(
        configs=args.configs,
        workloads=args.workloads,
        cores=tuple(args.cores),
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        manifest=args.manifest,
        progress=args.progress,
        return_stats=True,
    )
    if args.baseline:
        add_speedups(points, baseline_config=args.baseline)
    text = to_csv(points, path=args.csv)
    if args.csv:
        print(f"wrote {args.csv} ({len(points)} points)")
    else:
        print(text, end="")
    print(f"engine: {stats.describe()}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, cores_default=list(experiments.DEFAULT_CORES)):
        p.add_argument("--cores", type=int, nargs="+", default=cores_default)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes (default: REPRO_WORKERS or serial)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="result-cache directory (default: REPRO_CACHE_DIR or off)",
        )
        p.add_argument(
            "--progress", action="store_true", help="per-point progress + ETA"
        )

    for name in ("table1",) + FIGURES + ("headline", "chaos", "all"):
        p = sub.add_parser(name, help=f"run the {name} driver")
        add_common(p)
        if name in ("fig6", "all"):
            p.add_argument(
                "--csv", default=None, help="also write fig6 grid to this CSV"
            )

    p = sub.add_parser(
        "sweep", help="ad-hoc grid through the parallel engine"
    )
    add_common(p, cores_default=[16])
    p.add_argument(
        "--configs", nargs="+", required=True, help="machine configurations"
    )
    p.add_argument(
        "--workloads", nargs="+", required=True, help="kernel registry names"
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument(
        "--baseline", default=None, help="annotate speedups over this config"
    )
    p.add_argument("--manifest", default=None, help="resumable-sweep manifest path")
    p.add_argument("--csv", default=None, help="write results to this CSV path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _run_sweep(args)
    names = (
        ("table1",) + FIGURES + ("headline", "chaos")
        if args.command == "all"
        else (args.command,)
    )
    for name in names:
        _dispatch(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
