"""Deterministic random number generation.

Every stochastic decision in the machine and workloads draws from a
:class:`DeterministicRng` derived from the machine seed plus a stream
name, so adding a new consumer never perturbs existing streams and runs
are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A named, seeded random stream."""

    def __init__(self, seed: int, stream: str = "default"):
        digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self.seed = seed
        self.stream = stream

    def derive(self, substream: str) -> "DeterministicRng":
        """A child stream independent of this one."""
        return DeterministicRng(self.seed, f"{self.stream}/{substream}")

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return seq[self._rng.randrange(len(seq))]

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy (never mutates the input)."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def expovariate(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def geometric(self, mean: float) -> int:
        """Integer >= 0 with roughly geometric distribution, given mean."""
        if mean <= 0:
            return 0
        return int(self._rng.expovariate(1.0 / mean))
