"""Structured event tracing.

A machine-wide :class:`Tracer` collects timestamped, categorized events
from any component.  Tracing is off by default (a disabled tracer costs
one attribute check per call site); enable categories selectively::

    machine.tracer.enable("msa", "sched")
    ...
    for event in machine.tracer.events:
        print(event)
    print(machine.tracer.format(limit=50))

Categories used by the built-in components: ``msa`` (slice decisions),
``omu`` (counter changes), ``sched`` (suspend/resume/migrate),
``sync`` (core-side instruction issue/complete), ``fault`` (injected
drops/duplications/delays, transport retransmissions), ``retry``
(sync-unit timeout/retry/ping escalation), and ``degrade`` (home tiles
declared dead, orphan-lock recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceEvent:
    time: int
    category: str
    where: str
    what: str
    detail: Tuple = ()

    def __str__(self) -> str:
        detail = " ".join(str(d) for d in self.detail)
        return f"[{self.time:>8}] {self.category:<6} {self.where:<12} {self.what} {detail}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records for enabled categories."""

    def __init__(self, sim, max_events: int = 100_000):
        self.sim = sim
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._enabled: Set[str] = set()
        self.dropped = 0

    @property
    def active(self) -> bool:
        return bool(self._enabled)

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        if categories:
            self._enabled.difference_update(categories)
        else:
            self._enabled.clear()

    def record(self, category: str, where: str, what: str, *detail) -> None:
        """Record an event if its category is enabled."""
        if category not in self._enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(self.sim.now, category, where, what, tuple(detail))
        )

    def filter(
        self,
        category: Optional[str] = None,
        where: Optional[str] = None,
        what: Optional[str] = None,
    ) -> List[TraceEvent]:
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if where is not None:
            out = [e for e in out if e.where == where]
        if what is not None:
            out = [e for e in out if e.what == what]
        return out

    def format(self, limit: int = 200, **filters) -> str:
        events = self.filter(**filters)[-limit:]
        lines = [str(e) for e in events]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """(category, what) -> occurrence count."""
        out: Dict[Tuple[str, str], int] = {}
        for e in self.events:
            key = (e.category, e.what)
            out[key] = out.get(key, 0) + 1
        return out
