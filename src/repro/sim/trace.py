"""Structured event tracing.

A machine-wide :class:`Tracer` collects timestamped, categorized events
from any component.  Tracing is off by default (a disabled tracer costs
one attribute check per call site); enable categories selectively::

    machine.tracer.enable("msa", "sched")
    ...
    for event in machine.tracer.events:
        print(event)
    print(machine.tracer.format(limit=50))

Categories used by the built-in components: ``msa`` (slice decisions),
``omu`` (counter changes), ``sched`` (suspend/resume/migrate),
``sync`` (core-side instruction issue/complete), ``fault`` (injected
drops/duplications/delays, transport retransmissions), ``retry``
(sync-unit timeout/retry/ping escalation), and ``degrade`` (home tiles
declared dead, orphan-lock recovery).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceEvent:
    time: int
    category: str
    where: str
    what: str
    detail: Tuple = ()

    def __str__(self) -> str:
        detail = " ".join(str(d) for d in self.detail)
        return f"[{self.time:>8}] {self.category:<6} {self.where:<12} {self.what} {detail}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records for enabled categories."""

    def __init__(self, sim, max_events: int = 100_000):
        self.sim = sim
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._enabled: Set[str] = set()
        self.dropped = 0

    @property
    def active(self) -> bool:
        return bool(self._enabled)

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        if categories:
            self._enabled.difference_update(categories)
        else:
            self._enabled.clear()

    def record(self, category: str, where: str, what: str, *detail) -> None:
        """Record an event if its category is enabled."""
        if category not in self._enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(self.sim.now, category, where, what, tuple(detail))
        )

    def filter(
        self,
        category: Optional[str] = None,
        where: Optional[str] = None,
        what: Optional[str] = None,
    ) -> List[TraceEvent]:
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if where is not None:
            out = [e for e in out if e.where == where]
        if what is not None:
            out = [e for e in out if e.what == what]
        return out

    def format(self, limit: int = 200, **filters) -> str:
        events = self.filter(**filters)[-limit:]
        lines = [str(e) for e in events]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """(category, what) -> occurrence count.  Includes a synthetic
        ``("tracer", "dropped")`` entry when capacity drops occurred, so
        summaries built on counts() cannot silently miss truncation."""
        out: Dict[Tuple[str, str], int] = {}
        for e in self.events:
            key = (e.category, e.what)
            out[key] = out.get(key, 0) + 1
        if self.dropped:
            out[("tracer", "dropped")] = self.dropped
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, path=None, **filters) -> str:
        """Serialize (filtered) events as JSON Lines, one event per
        line; writes to ``path`` when given, returns the text either
        way.  A final metadata line reports capacity drops."""
        lines = [
            json.dumps(
                {
                    "time": e.time,
                    "category": e.category,
                    "where": e.where,
                    "what": e.what,
                    "detail": [repr(d) if not isinstance(d, (int, float, str, bool, type(None))) else d for d in e.detail],
                },
                sort_keys=True,
            )
            for e in self.filter(**filters)
        ]
        if self.dropped:
            lines.append(json.dumps({"meta": "tracer", "dropped": self.dropped}))
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def to_chrome_trace(self, path=None, **filters) -> str:
        """Export (filtered) events in the Chrome trace-event format
        (load in Perfetto / ``chrome://tracing``).

        Every event becomes an instant event (``ph: "i"``) on a virtual
        thread per ``where`` (component), under one process per
        category; ``detail`` rides in ``args``.  Cycle timestamps map
        directly onto the format's microsecond field.

        The export is schema-valid for Perfetto/``chrome://tracing``:
        every record -- including the process/thread metadata and the
        capacity-drop marker -- carries integer ``pid`` and ``tid``
        fields (viewers silently discard records without them).
        Capacity drops are reported as one instant event on a dedicated
        ``tracer`` thread, mirroring :meth:`to_jsonl`'s metadata line,
        so truncation is visible in the timeline instead of silently
        missing.  Span-shaped traces come from the observability layer
        (:func:`repro.obs.export.spans_to_chrome_trace`), which
        supersedes this raw-event export for everything paired.
        """
        events = self.filter(**filters)
        wheres = sorted({e.where for e in events})
        tids = {where: index + 1 for index, where in enumerate(wheres)}
        out = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro.tracer"},
            }
        ]
        out += [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[where],
                "args": {"name": where},
            }
            for where in wheres
        ]
        for e in events:
            out.append(
                {
                    "name": e.what,
                    "cat": e.category,
                    "ph": "i",
                    "s": "t",
                    "ts": e.time,
                    "pid": 1,
                    "tid": tids[e.where],
                    "args": {"detail": [str(d) for d in e.detail]},
                }
            )
        if self.dropped:
            last = events[-1].time if events else 0
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": "tracer"},
                }
            )
            out.append(
                {
                    "name": f"{self.dropped} events dropped at capacity",
                    "cat": "tracer",
                    "ph": "i",
                    "s": "g",
                    "ts": last,
                    "pid": 1,
                    "tid": 0,
                    "args": {"dropped": self.dropped},
                }
            )
        text = json.dumps({"traceEvents": out, "displayTimeUnit": "ns"})
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text
