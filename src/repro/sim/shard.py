"""Horizon-sharded simulation kernel: conservative-lookahead tile groups
plus batched same-cycle event draining.

Why this exists
---------------
:class:`repro.sim.kernel.Simulator` keeps one global binary heap and
pays ``heappush`` + ``heappop`` of a 4-tuple -- a :math:`O(\\log n)`
comparison chain each -- for every single event.  Measured on the
headline workloads, events cluster heavily on shared timestamps (5
events per distinct cycle at 64 cores, ~12 at 256 cores: compute-phase
completions, same-cycle L1 hits, and NoC hop batches all land
together), so most of that heap traffic is pure overhead.

:class:`ShardedSimulator` replaces the event heap with a *calendar of
per-cycle buckets*:

* :meth:`schedule` appends to the bucket for the target cycle -- an
  O(1) dict hit + list append, no tuple comparisons -- and pushes the
  cycle number onto a small int-heap only when the bucket is new;
* the drain loop pops one *timestamp* (not one event), then executes
  the whole bucket in a tight loop -- the "vectorized batch" -- so the
  heap cost is paid once per distinct cycle and amortized across every
  event that shares it.

Tile groups and the conservative horizon
----------------------------------------
The machine is partitioned into :class:`TileGroups` (contiguous mesh
blocks from :class:`repro.noc.topology.MeshTopology`).  The minimum
cross-group NoC delivery latency -- injection + one link crossing + one
router pipeline, the classic conservative-PDES *lookahead* -- defines a
synchronization *horizon*: no event executed in one group can schedule
work in another group sooner than ``lookahead`` cycles in the future
*through the network*.  :class:`repro.noc.network.Network` stamps every
cross-group send with this bound and validates it at delivery
(``Machine.sharding_info()["lookahead_violations"]`` must stay 0), so
the partition's independence claim is *checked on every run*, not
assumed.

The determinism total order
---------------------------
The legacy kernel orders events by ``(time, seq)`` where ``seq`` is the
global scheduling sequence.  The sharded kernel's total order is
``(horizon window, time, bucket position)`` -- and because buckets are
appended in scheduling order and drained front-to-back, within every
horizon window this *collapses to exactly* ``(time, seq)``.  That makes
sharded and legacy runs bit-identical by construction: same cycles,
same event count, same counters, same golden fingerprints
(``tests/test_golden_determinism.py`` pins both modes against one
table).  Cross-group events inside a window are provably independent
(the lookahead validation above) but are still drained in the merged
deterministic order rather than group-at-a-time: the zero-latency
couplings that bypass the NoC -- thread-join futures, futex wakes, the
ideal sync oracle -- make group-sequential draining unsafe, and Python
gains nothing from reordering work it executes serially anyway.  See
docs/PERF.md ("The horizon-sharded kernel") for the full derivation.

``REPRO_SIM_SHARDING`` (see :mod:`repro.common.config`) selects the
kernel: ``sharded``, ``legacy``, or ``auto`` (sharded everywhere except
trivially small machines, where the calendar's constant overheads can
exceed the heap's).  The legacy kernel remains fully supported for
differential testing.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.sim.kernel import NO_ARG, Simulator

from heapq import heappop, heappush

_NO_ARG = NO_ARG

#: Default tile-group block edge: groups are ``block x block`` mesh
#: tiles.  4x4 keeps intra-group traffic (the common case for locks
#: homed near their users) off the cross-group ledger while leaving
#: enough groups for the horizon accounting to be meaningful at 64+.
DEFAULT_GROUP_BLOCK = 4


class TileGroups:
    """A partition of the mesh into contiguous ``block x block`` groups.

    Tile ``t`` at mesh coordinate ``(x, y)`` belongs to group
    ``(y // block) * group_side + (x // block)``.  The partition is
    deterministic given ``(n_tiles, block)``; :attr:`group_of` is a
    flat list for O(1) per-message lookups on the hot path.
    """

    def __init__(self, n_tiles: int, side: int, block: int = DEFAULT_GROUP_BLOCK):
        if block < 1:
            raise SimulationError(f"group block must be >= 1, got {block}")
        block = min(block, side) if side else 1
        self.n_tiles = n_tiles
        self.side = side
        self.block = block
        gside = (side + block - 1) // block if side else 1
        self.group_side = gside
        self.group_of: List[int] = [
            (t // side // block) * gside + (t % side) // block
            for t in range(n_tiles)
        ] if side else [0] * n_tiles
        self.n_groups = (max(self.group_of) + 1) if n_tiles else 1

    @classmethod
    def for_mesh(cls, n_tiles: int, block: int = DEFAULT_GROUP_BLOCK) -> "TileGroups":
        side = int(math.isqrt(n_tiles)) if n_tiles else 0
        return cls(n_tiles, side, block)

    def tiles_in(self, group: int) -> List[int]:
        return [t for t, g in enumerate(self.group_of) if g == group]

    def __repr__(self) -> str:
        return (
            f"TileGroups({self.n_groups} groups of <={self.block}x"
            f"{self.block} tiles over {self.side}x{self.side})"
        )


def conservative_lookahead(noc_params, n_groups: int) -> int:
    """The horizon width: minimum NoC latency of any cross-group
    message.

    Adjacent tiles in different groups are one hop apart, so the bound
    is one full traversal of a single link: injection latency, the
    link's serialized occupancy (``link_latency + flits - 1``), and one
    router pipeline.  Fault-injected delays only *add* latency, so the
    bound stays conservative on chaos runs.  With a single group there
    is no cross-group traffic and the horizon degenerates to 1 cycle.
    """
    if n_groups <= 1:
        return 1
    occupancy = max(1, noc_params.link_latency + noc_params.flits_per_message - 1)
    return max(
        1,
        noc_params.injection_latency + occupancy + noc_params.router_latency,
    )


class ShardedSimulator(Simulator):
    """Calendar-queue kernel: per-cycle buckets drained as batches.

    Drop-in replacement for :class:`repro.sim.kernel.Simulator` -- the
    full ``schedule`` / ``run`` / ``run_chunk`` contract is preserved,
    including the exact event total order (see module docstring), the
    ``max_events`` / ``until`` semantics, and mid-bucket exception
    safety (a callback that raises leaves the *unexecuted* remainder of
    its cycle queued, exactly as the heap kernel leaves unpopped
    events).
    """

    def __init__(self, groups: Optional[TileGroups] = None, lookahead: int = 1):
        super().__init__()
        self.groups = groups
        self.lookahead = max(1, int(lookahead))
        self._buckets = {}
        self._times: List[int] = []
        self._buckets_drained = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, arg=_NO_ARG) -> None:
        """Run ``callback`` ``delay`` cycles from now; same contract as
        :meth:`Simulator.schedule`.  Appending to the target cycle's
        bucket preserves the global scheduling order within the cycle,
        so no explicit sequence number is needed."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self.now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(callback, arg)]
            heappush(self._times, when)
        else:
            bucket.append((callback, arg))

    def _push(self, when, callback, arg) -> None:
        """Absolute-time fast path used by the NoC hop chain (the delay
        is non-negative by construction there)."""
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(callback, arg)]
            heappush(self._times, when)
        else:
            bucket.append((callback, arg))

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    # The drain loops *pop* each cycle's bucket out of the table before
    # executing it, so the hot path pays one dict operation per bucket
    # (not a getitem plus a delitem) and iterates a frozen list.  A
    # callback that schedules more work for the *current* cycle simply
    # creates a fresh bucket under the same timestamp (re-pushing it
    # onto the time-heap), which the outer loop drains next -- those
    # events carry the newest sequence positions, so running them after
    # the frozen bucket is exactly the legacy (time, seq) order.

    def _requeue(self, when, remainder) -> None:
        """Put an unexecuted bucket remainder back under ``when`` (cold
        path: a raising callback or a mid-bucket chunk boundary).  Any
        fresh bucket a callback created at the same cycle holds newer
        events, so the remainder is prepended to it."""
        if not remainder:
            return
        fresh = self._buckets.get(when)
        if fresh is not None:
            # ``when`` is already on the time-heap (pushed when the
            # fresh bucket was created).
            remainder.extend(fresh)
        else:
            heappush(self._times, when)
        self._buckets[when] = remainder

    def run(self, until=None, max_events=None) -> int:
        """Drain the calendar; see :meth:`Simulator.run` for the
        contract (identical, including event order)."""
        buckets = self._buckets
        times = self._times
        pop_time = heappop
        pop_bucket = buckets.pop
        no_arg = _NO_ARG
        count = 0
        drained = 0
        try:
            if until is None and max_events is None:
                # Unbounded drain: one int pop per distinct cycle, then
                # the whole bucket runs in a tight loop.
                while times:
                    when = pop_time(times)
                    self.now = when
                    bucket = pop_bucket(when)
                    start = count
                    try:
                        for callback, arg in bucket:
                            count += 1
                            if arg is no_arg:
                                callback()
                            else:
                                callback(arg)
                    except BaseException:
                        del bucket[: count - start]
                        self._requeue(when, bucket)
                        raise
                    drained += 1
            elif until is None:
                # Event-budget-only drain.  Whole buckets that fit the
                # remaining budget (the overwhelmingly common case: the
                # budget is a livelock guard rail, not a pacing device)
                # drain with no per-event budget compare; only a bucket
                # that straddles the boundary takes the checked loop.
                # The offending event stays queued either way.
                while times:
                    if count == max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at cycle {self.now}"
                        )
                    when = pop_time(times)
                    self.now = when
                    bucket = pop_bucket(when)
                    start = count
                    try:
                        if count + len(bucket) <= max_events:
                            for callback, arg in bucket:
                                count += 1
                                if arg is no_arg:
                                    callback()
                                else:
                                    callback(arg)
                        else:
                            for callback, arg in bucket:
                                if count == max_events:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events} "
                                        f"at cycle {self.now}"
                                    )
                                count += 1
                                if arg is no_arg:
                                    callback()
                                else:
                                    callback(arg)
                    except BaseException:
                        del bucket[: count - start]
                        self._requeue(when, bucket)
                        raise
                    drained += 1
            elif max_events is None:
                # Clock-bounded drain, no event budget: peek before the
                # pop so the first over-horizon bucket stays queued.
                while times:
                    when = times[0]
                    if when > until:
                        self.now = until
                        return until
                    pop_time(times)
                    self.now = when
                    bucket = pop_bucket(when)
                    start = count
                    try:
                        for callback, arg in bucket:
                            count += 1
                            if arg is no_arg:
                                callback()
                            else:
                                callback(arg)
                    except BaseException:
                        del bucket[: count - start]
                        self._requeue(when, bucket)
                        raise
                    drained += 1
            else:
                while times:
                    when = times[0]
                    if when > until:
                        self.now = until
                        return until
                    if count >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at cycle {self.now}"
                        )
                    pop_time(times)
                    self.now = when
                    bucket = pop_bucket(when)
                    start = count
                    try:
                        for callback, arg in bucket:
                            if count >= max_events:
                                raise SimulationError(
                                    f"exceeded max_events={max_events} "
                                    f"at cycle {self.now}"
                                )
                            count += 1
                            if arg is no_arg:
                                callback()
                            else:
                                callback(arg)
                    except BaseException:
                        del bucket[: count - start]
                        self._requeue(when, bucket)
                        raise
                    drained += 1
        finally:
            self._events_processed += count
            self._buckets_drained += drained
        return self.now

    def run_chunk(self, max_events: int) -> int:
        """Drain up to ``max_events`` events; exhausting the budget is
        not an error (the watchdog owns the policy).  A chunk boundary
        may fall *mid-bucket*: the executed prefix is trimmed and the
        cycle re-queued, so consecutive chunks replay the exact legacy
        drain order -- chunked and monolithic drains are bit-identical
        (pinned by ``tests/test_sharding.py``)."""
        buckets = self._buckets
        times = self._times
        no_arg = _NO_ARG
        count = 0
        drained = 0
        try:
            while times and count < max_events:
                when = heappop(times)
                self.now = when
                bucket = buckets.pop(when)
                start = count
                try:
                    if count + len(bucket) <= max_events:
                        # Whole bucket fits the chunk: no per-event
                        # budget compare (same trick as :meth:`run`).
                        for callback, arg in bucket:
                            count += 1
                            if arg is no_arg:
                                callback()
                            else:
                                callback(arg)
                        drained += 1
                        continue
                    for callback, arg in bucket:
                        if count == max_events:
                            break
                        count += 1
                        if arg is no_arg:
                            callback()
                        else:
                            callback(arg)
                    else:
                        drained += 1
                        continue
                except BaseException:
                    del bucket[: count - start]
                    self._requeue(when, bucket)
                    raise
                # Budget exhausted mid-bucket: keep the remainder, in
                # order, under the same cycle.
                del bucket[: count - start]
                self._requeue(when, bucket)
        finally:
            self._events_processed += count
            self._buckets_drained += drained
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return sum(map(len, self._buckets.values()))

    @property
    def buckets_drained(self) -> int:
        """Distinct (cycle) batches executed so far; the ratio
        ``events_processed / buckets_drained`` is the measured batch
        density (how many heap operations the calendar amortized)."""
        return self._buckets_drained

    @property
    def horizon_windows(self) -> int:
        """Conservative-lookahead windows the clock has crossed."""
        return self.now // self.lookahead + 1

    def sharding_info(self) -> dict:
        """Metadata stamped into ``repro.perf`` benchmark documents."""
        drained = self._buckets_drained
        return {
            "mode": "sharded",
            "n_groups": self.groups.n_groups if self.groups else 1,
            "group_block": self.groups.block if self.groups else 0,
            "lookahead": self.lookahead,
            "horizon_windows": self.horizon_windows,
            "buckets_drained": drained,
            "batch_density": (
                round(self._events_processed / drained, 2) if drained else 0.0
            ),
        }
