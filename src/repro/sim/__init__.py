"""Discrete-event simulation kernel.

The whole machine model is built on three primitives:

* :class:`~repro.sim.kernel.Simulator` -- the event heap and clock,
* :class:`~repro.sim.kernel.Future` -- a one-shot completion token that
  hardware models fulfil and coroutine processes wait on,
* :class:`~repro.sim.kernel.Process` -- a generator-based coroutine
  driven by the simulator (threads, cores, routers are processes or
  callback-driven components).
"""

from repro.sim.kernel import Simulator, Future, Process, Delay
from repro.sim.rng import DeterministicRng

__all__ = ["Simulator", "Future", "Process", "Delay", "DeterministicRng"]
