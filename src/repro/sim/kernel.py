"""Event heap, simulation clock, futures, and coroutine processes.

Design notes
------------
The machine model mixes two styles:

* *Callback-driven* hardware components (routers, caches, MSA slices)
  schedule plain callbacks with :meth:`Simulator.schedule`.
* *Coroutine* processes (simulated threads, workload kernels) are Python
  generators that ``yield`` either an ``int``/:class:`Delay` (advance the
  clock) or a :class:`Future` (block until some hardware event fulfils
  it).  Sub-routines compose with ``yield from``.

Events at the same timestamp fire in scheduling order (a monotonically
increasing sequence number breaks ties), which makes runs bit-for-bit
deterministic for a given seed and configuration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class Delay:
    """Explicit delay request a process may yield (equivalent to yielding
    the plain integer, but self-documenting at call sites)."""

    cycles: int


class Future:
    """A one-shot completion token.

    Hardware fulfils a future with :meth:`complete`; at most one process
    may wait on it (the machine's request/response protocols are all
    point-to-point), plus any number of callbacks may observe it.
    """

    __slots__ = ("sim", "_done", "_value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("Future read before completion")
        return self._value

    def complete(self, value: Any = None) -> None:
        """Fulfil the future *now*; waiters resume at the current cycle."""
        if self._done:
            raise SimulationError("Future completed twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def complete_at(self, delay: int, value: Any = None) -> None:
        """Fulfil the future ``delay`` cycles from now."""
        self.sim.schedule(delay, lambda: self.complete(value))

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        if self._done:
            callback(self._value)
        else:
            self._callbacks.append(callback)


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives a generator coroutine through the simulator.

    The generator may yield:

    * ``int`` or :class:`Delay` -- resume after that many cycles,
    * :class:`Future` -- resume (with the future's value sent in) when
      the future completes.

    When the generator returns, :attr:`finished` becomes true and
    :attr:`result` holds its return value; :attr:`on_exit` (a Future)
    completes so parents can join.
    """

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "?"):
        self.sim = sim
        self.body = body
        self.name = name
        self.finished = False
        self.result: Any = None
        self.on_exit = Future(sim)
        self._waiting_on: Optional[Future] = None

    def start(self, delay: int = 0) -> "Process":
        self.sim.schedule(delay, lambda: self._step(None))
        return self

    @property
    def blocked_on(self) -> Optional[Future]:
        """The future this process is currently waiting on, if any
        (used by deadlock diagnostics)."""
        return self._waiting_on

    def _step(self, send_value: Any) -> None:
        self._waiting_on = None
        try:
            yielded = self.body.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.on_exit.complete(stop.value)
            self.sim._release(self)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            self.sim.schedule(yielded, lambda: self._step(None))
        elif isinstance(yielded, Delay):
            self.sim.schedule(yielded.cycles, lambda: self._step(None))
        elif isinstance(yielded, Future):
            self._waiting_on = yielded
            yielded.add_callback(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; yield an int, Delay, or Future"
            )


class Simulator:
    """The event heap and clock."""

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._seq = 0
        self._events_processed = 0
        self._processes: List[Process] = []

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now (0 = this cycle,
        after currently executing events)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def future(self) -> Future:
        return Future(self)

    def process(self, body: ProcessBody, name: str = "?", delay: int = 0) -> Process:
        """Create and start a coroutine process."""
        proc = Process(self, body, name=name)
        self._processes.append(proc)
        return proc.start(delay)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event heap.

        Returns the final simulation time.  ``until`` bounds the clock;
        ``max_events`` bounds work (guards against livelock in tests) and
        applies per invocation, not cumulatively across ``run()`` calls.
        """
        events_this_run = 0
        while self._heap:
            when, _seq, callback = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if max_events is not None and events_this_run >= max_events:
                # Checked before the pop so exactly max_events events run;
                # the offending event stays queued and events_processed
                # counts only executed events.
                raise SimulationError(
                    f"exceeded max_events={max_events} at cycle {self.now}"
                )
            heapq.heappop(self._heap)
            self.now = when
            self._events_processed += 1
            events_this_run += 1
            callback()
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def _release(self, proc: Process) -> None:
        """Drop a finished process so long runs don't accumulate them."""
        try:
            self._processes.remove(proc)
        except ValueError:
            pass

    def unfinished_processes(self) -> List[Process]:
        return [p for p in self._processes if not p.finished]
