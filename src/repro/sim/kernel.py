"""Event heap, simulation clock, futures, and coroutine processes.

Design notes
------------
The machine model mixes two styles:

* *Callback-driven* hardware components (routers, caches, MSA slices)
  schedule plain callbacks with :meth:`Simulator.schedule`.
* *Coroutine* processes (simulated threads, workload kernels) are Python
  generators that ``yield`` either an ``int``/:class:`Delay` (advance the
  clock) or a :class:`Future` (block until some hardware event fulfils
  it).  Sub-routines compose with ``yield from``.

Events at the same timestamp fire in scheduling order (a monotonically
increasing sequence number breaks ties), which makes runs bit-for-bit
deterministic for a given seed and configuration.

Hot-path conventions (this module carries every simulated cycle; see
docs/PERF.md for the measured effect and the determinism contract):

* :meth:`Simulator.schedule` takes an optional ``arg`` so call sites
  can pass a bound method plus its argument instead of allocating a
  closure per event; the event loop applies the argument itself.
* :class:`Process` caches its bound ``_step`` once, so resuming a
  coroutine (including via :meth:`Future.complete`) never re-creates a
  bound-method object, and dispatches the common ``int`` yield inline.
* Live processes are tracked in a dict keyed by ``id`` so releasing a
  finished process is O(1); releasing one twice is a kernel bug and
  raises instead of being swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.common.errors import SimulationError

#: Sentinel for "scheduled without an argument": the event loop calls
#: ``callback()`` when it sees this, ``callback(arg)`` otherwise.  A
#: sentinel (not ``None``) so ``None`` remains a passable argument.
NO_ARG = object()

_NO_ARG = NO_ARG


@dataclass(frozen=True)
class Delay:
    """Explicit delay request a process may yield (equivalent to yielding
    the plain integer, but self-documenting at call sites)."""

    cycles: int


class Future:
    """A one-shot completion token.

    Hardware fulfils a future with :meth:`complete`; at most one process
    may wait on it (the machine's request/response protocols are all
    point-to-point), plus any number of callbacks may observe it.
    """

    __slots__ = ("sim", "_done", "_value", "_cb")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        # None | a single callable | a list of callables.  Nearly every
        # future has exactly one waiter (the issuing process), so the
        # common case never allocates a list.
        self._cb: Any = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("Future read before completion")
        return self._value

    def complete(self, value: Any = None) -> None:
        """Fulfil the future *now*; waiters resume at the current cycle."""
        if self._done:
            raise SimulationError("Future completed twice")
        self._done = True
        self._value = value
        cb = self._cb
        if cb is not None:
            self._cb = None
            if type(cb) is list:
                for callback in cb:
                    callback(value)
            else:
                cb(value)

    def complete_at(self, delay: int, value: Any = None) -> None:
        """Fulfil the future ``delay`` cycles from now."""
        self.sim.schedule(delay, self.complete, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        if self._done:
            callback(self._value)
            return
        cb = self._cb
        if cb is None:
            self._cb = callback
        elif type(cb) is list:
            cb.append(callback)
        else:
            self._cb = [cb, callback]


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives a generator coroutine through the simulator.

    The generator may yield:

    * ``int`` or :class:`Delay` -- resume after that many cycles,
    * :class:`Future` -- resume (with the future's value sent in) when
      the future completes.

    When the generator returns, :attr:`finished` becomes true and
    :attr:`result` holds its return value; :attr:`on_exit` (a Future)
    completes so parents can join.
    """

    __slots__ = (
        "sim",
        "body",
        "name",
        "finished",
        "result",
        "on_exit",
        "_waiting_on",
        "_step_cb",
    )

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "?"):
        self.sim = sim
        self.body = body
        self.name = name
        self.finished = False
        self.result: Any = None
        self.on_exit = Future(sim)
        self._waiting_on: Optional[Future] = None
        # One bound method for the process's whole life: every resume
        # (timer or future completion) reuses it instead of re-binding.
        self._step_cb = self._step

    def start(self, delay: int = 0) -> "Process":
        self.sim.schedule(delay, self._step_cb, None)
        return self

    @property
    def blocked_on(self) -> Optional[Future]:
        """The future this process is currently waiting on, if any
        (used by deadlock diagnostics)."""
        return self._waiting_on

    def _step(self, send_value: Any) -> None:
        self._waiting_on = None
        try:
            yielded = self.body.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.on_exit.complete(stop.value)
            self.sim._release(self)
            return
        cls = type(yielded)
        if cls is int:
            self.sim.schedule(yielded, self._step_cb, None)
        elif cls is Future:
            self._waiting_on = yielded
            yielded.add_callback(self._step_cb)
        else:
            self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        # Slow path: Delay objects plus int/Future subclasses (bools,
        # test doubles); exact types were fast-pathed in _step.
        if isinstance(yielded, int):
            self.sim.schedule(yielded, self._step_cb, None)
        elif isinstance(yielded, Delay):
            self.sim.schedule(yielded.cycles, self._step_cb, None)
        elif isinstance(yielded, Future):
            self._waiting_on = yielded
            yielded.add_callback(self._step_cb)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; yield an int, Delay, or Future"
            )


class Simulator:
    """The event heap and clock."""

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._seq = 0
        self._events_processed = 0
        self._processes: Dict[int, Process] = {}

    def schedule(
        self, delay: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` ``delay`` cycles from now (0 = this cycle,
        after currently executing events).

        With ``arg``, the loop calls ``callback(arg)`` -- pass a bound
        method and its operand instead of wrapping them in a lambda."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self.now + delay, seq, callback, arg))

    def _push(self, when: int, callback: Callable, arg: Any) -> None:
        """Absolute-time scheduling fast path for the NoC hop chain
        (:meth:`repro.noc.router.LinkFabric._cross`): same seq
        discipline and ordering as :meth:`schedule`, no delay check
        (``when >= now`` holds by construction there).  Overridden by
        :class:`repro.sim.shard.ShardedSimulator` -- this indirection is
        what lets one router hot path drive either kernel."""
        self._seq = seq = self._seq + 1
        heappush(self._heap, (when, seq, callback, arg))

    def future(self) -> Future:
        return Future(self)

    def process(self, body: ProcessBody, name: str = "?", delay: int = 0) -> Process:
        """Create and start a coroutine process."""
        proc = Process(self, body, name=name)
        self._processes[id(proc)] = proc
        return proc.start(delay)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event heap.

        Returns the final simulation time.  ``until`` bounds the clock;
        ``max_events`` bounds work (guards against livelock in tests) and
        applies per invocation, not cumulatively across ``run()`` calls.
        """
        heap = self._heap
        no_arg = _NO_ARG
        count = 0
        try:
            if until is None and max_events is None:
                # Unbounded drain: no per-event limit checks.
                while heap:
                    when, _seq, callback, arg = heappop(heap)
                    self.now = when
                    count += 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            elif until is None:
                # Event-budget-only drain (the workload runner's guard
                # rail): one integer compare per event, no clock peek.
                while heap:
                    if count == max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at cycle {self.now}"
                        )
                    when, _seq, callback, arg = heappop(heap)
                    self.now = when
                    count += 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            else:
                while heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return until
                    if max_events is not None and count >= max_events:
                        # Checked before the pop so exactly max_events
                        # events run; the offending event stays queued and
                        # events_processed counts only executed events.
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at cycle {self.now}"
                        )
                    _when, _seq, callback, arg = heappop(heap)
                    self.now = _when
                    count += 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self._events_processed += count
        return self.now

    def run_chunk(self, max_events: int) -> int:
        """Drain up to ``max_events`` events and return how many ran.

        Unlike :meth:`run`, exhausting the budget is *not* an error --
        the caller (the :class:`repro.resilience.watchdog.Watchdog`)
        owns the policy.  Events pop in exactly the order :meth:`run`
        would pop them, so chunked and monolithic drains of the same
        heap are bit-identical.
        """
        heap = self._heap
        no_arg = _NO_ARG
        count = 0
        try:
            while heap and count < max_events:
                when, _seq, callback, arg = heappop(heap)
                self.now = when
                count += 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            self._events_processed += count
        return count

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def _release(self, proc: Process) -> None:
        """Drop a finished process so long runs don't accumulate them."""
        if self._processes.pop(id(proc), None) is None:
            raise SimulationError(
                f"process {proc.name!r} released twice (or never "
                f"registered via Simulator.process)"
            )

    def unfinished_processes(self) -> List[Process]:
        return [p for p in self._processes.values() if not p.finished]
