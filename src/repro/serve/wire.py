"""Wire formats of the experiment service.

Every HTTP body ``repro serve`` reads or writes is a JSON object
stamped with :data:`~repro.common.schema.SERVE_SCHEMA`; job specs
embedded in requests additionally carry their own
:data:`~repro.common.schema.JOBSPEC_SCHEMA` stamp (see
:meth:`repro.harness.jobs.JobSpec.to_wire`).  This module owns the
translation between those JSON documents and the engine's native
objects -- the server (:mod:`repro.serve.server`) and the client
(:mod:`repro.client`) both build on it, so the two cannot drift apart.

A sweep submission is either a grid (the same shape
:func:`repro.api.sweep` takes)::

    {"schema": "repro.serve/1",
     "configs": ["pthread", "msa-omu-2"],
     "workloads": ["streamcluster"],
     "cores": [16], "scale": 0.25, "seed": 2015}

or an explicit job list (``{"schema": ..., "jobs": [<jobspec wire>,
...]}``).  Grids expand in the exact order the local engine walks them
(cores, then workloads, then configs), so a remote sweep returns its
points in the same order a local one does.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.common.schema import JOBSPEC_SCHEMA, SERVE_SCHEMA, check_schema
from repro.harness.jobs import JobSpec, resolve_factory

#: How many hex digits of the key hash name a sweep.
SWEEP_ID_LEN = 16


def sweep_id(keys: Sequence[str]) -> str:
    """Content-addressed sweep identity: a hash over the sorted job
    keys.  Two clients submitting the same grid -- in any field order
    -- get the same sweep id, which is what makes resubmission and
    concurrent submission free."""
    blob = "\n".join(sorted(keys))
    return hashlib.sha256(blob.encode()).hexdigest()[:SWEEP_ID_LEN]


def _str_list(body: Dict[str, Any], field: str) -> List[str]:
    value = body.get(field)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value or not all(
        isinstance(v, str) for v in value
    ):
        raise ConfigError(
            f"sweep request field {field!r} must be a non-empty list of "
            "names"
        )
    return list(value)


def expand_sweep_request(body: Dict[str, Any]) -> List[JobSpec]:
    """Validate one ``POST /v1/sweeps`` body and expand it to specs.

    Checks the envelope schema, then either takes the explicit
    ``jobs`` list or expands the grid fields; every spec passes through
    :meth:`JobSpec.from_wire` (so the jobspec schema is enforced on
    both shapes) and its workload name is resolved against the
    registries, so an unknown name is rejected at submission time with
    a 400 instead of failing later inside a worker.
    """
    if not isinstance(body, dict):
        raise ConfigError("sweep request must be a JSON object")
    check_schema(body.get("schema"), SERVE_SCHEMA, what="service")

    wires: List[Dict[str, Any]] = []
    if "jobs" in body:
        jobs = body["jobs"]
        if not isinstance(jobs, list) or not jobs:
            raise ConfigError(
                "sweep request 'jobs' must be a non-empty list of job "
                "spec objects"
            )
        wires = list(jobs)
    else:
        configs = _str_list(body, "configs")
        workloads = _str_list(body, "workloads")
        cores = body.get("cores", [16])
        if isinstance(cores, int):
            cores = [cores]
        if not isinstance(cores, (list, tuple)) or not all(
            isinstance(c, int) and c > 0 for c in cores
        ):
            raise ConfigError(
                "sweep request 'cores' must be positive integers"
            )
        base = {
            "schema": JOBSPEC_SCHEMA,
            "scale": body.get("scale", 1.0),
            "seed": body.get("seed", 2015),
            "params": body.get("params", {}),
            "check": body.get("check", True),
            "checkers": body.get("checkers", []),
        }
        if "max_events" in body:
            base["max_events"] = body["max_events"]
        # Same walk order as repro.harness.sweep.sweep: cores, then
        # workloads, then configs -- remote point order == local.
        for n in cores:
            for workload in workloads:
                for config in configs:
                    wires.append(
                        dict(base, config=config, workload=workload, cores=n)
                    )

    from repro.harness.configs import CONFIG_NAMES

    specs = []
    for data in wires:
        spec = JobSpec.from_wire(data)
        if spec.config not in CONFIG_NAMES:
            raise ConfigError(
                f"unknown config {spec.config!r}; expected one of "
                f"{sorted(CONFIG_NAMES)}"
            )
        # Resolve the registry factory now: unknown workloads 400 at
        # submission, and the spec keys match what a local
        # ``api.sweep`` (which passes registry factories) computes, so
        # the service and local runs share one cache namespace.
        spec.factory = resolve_factory(spec.workload)
        specs.append(spec)
    return specs


def sweep_record(sid: str, specs: Sequence[JobSpec], keys: Sequence[str]) -> Dict:
    """The durable sweep document (``<cache>/sweeps/<id>.json``): the
    submitted points, in submission order, with their job keys."""
    return {
        "schema": SERVE_SCHEMA,
        "id": sid,
        "jobs": [
            {
                "key": key,
                "config": spec.config,
                "workload": spec.workload,
                "cores": spec.cores,
                "scale": spec.scale,
                "seed": spec.seed,
            }
            for spec, key in zip(specs, keys)
        ],
    }


def error_doc(message: str, **extra) -> Dict:
    """The JSON body of every non-2xx response."""
    doc = {"schema": SERVE_SCHEMA, "error": str(message)}
    doc.update(extra)
    return doc


__all__ = [
    "SWEEP_ID_LEN",
    "error_doc",
    "expand_sweep_request",
    "sweep_id",
    "sweep_record",
]
