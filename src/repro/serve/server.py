"""The ``repro serve`` asyncio HTTP/JSON experiment service.

One long-running process owns a result cache, the durable SQLite job
store next to it, and a supervised execution fleet; any number of
clients (:mod:`repro.client`, dashboards, CI, ``curl``) submit sweeps
and read results over HTTP.  Everything below the HTTP layer is the
*existing* engine substrate: submissions become
:class:`~repro.harness.jobs.JobSpec` rows in the
:class:`~repro.resilience.store.JobStore`, execution runs through
:class:`~repro.resilience.supervise.WorkerLoop` /
:class:`~repro.resilience.supervise.WorkerPool` (leases, heartbeats,
watchdogs, quarantine -- all reused), and results land in the
content-addressed :class:`~repro.harness.jobs.ResultCache`, so a
result fetched over HTTP is byte-identical to the same point run
locally.

Endpoints (all JSON unless noted; see docs/SERVICE.md):

=====================  ====================================================
``POST /v1/sweeps``     submit a sweep (grid or explicit job list); 202
                        with the sweep's status document
``GET /v1/sweeps``      list known sweeps
``GET /v1/sweeps/{id}`` sweep status; ``?wait=S`` long-polls until done
                        (capped), ``?stream=sse`` streams progress as
                        Server-Sent Events
``GET /v1/jobs/{key}``  one job's status and (when done) its RunResult
``GET /v1/healthz``     liveness + job-status totals
``GET /v1/metrics``     Prometheus text format (server, store, cache)
``GET /v1/report``      the cache-only HTML sweep report (``?baseline=``)
=====================  ====================================================

Dedup is structural: a job's identity is its content hash
(:meth:`JobSpec.key`), a sweep's identity is a hash over its job keys,
and :meth:`JobStore.enqueue` is idempotent -- two clients submitting
the same sweep concurrently create each row exactly once and each
point executes exactly once.  Crash-safety is inherited from the
store/cache contracts: SIGKILL the server mid-sweep, restart it on the
same cache directory, and the sweep converges (expired leases are
reclaimed, finished points are already durable).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pickle
import signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common import config as repro_config
from repro.common.errors import ConfigError, SchemaError, ServiceError
from repro.common.schema import SERVE_SCHEMA, check_schema
from repro.harness.jobs import ResultCache, _atomic_write_json
from repro.resilience.store import JobStore, default_store_path
from repro.resilience.supervise import WorkerLoop, WorkerPool
from repro.serve import wire

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765
#: Largest accepted request body (a sweep submission is small).
MAX_BODY_BYTES = 8 << 20
#: ``?wait=`` long-polls are capped at this many seconds per request
#: (clients re-issue; an unbounded wait would pin a dead client's
#: connection forever).
LONG_POLL_CAP_S = 60.0
#: Status re-check cadence for long-polls and SSE streams.
WATCH_POLL_S = 0.1

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class _NotFound(Exception):
    """Route-level 404 (unknown sweep/job/path)."""


class Server:
    """The experiment service (see module docstring).

    ``cache_dir`` (or ``REPRO_CACHE_DIR``) is mandatory: the cache and
    the job store next to it *are* the service's shared state --
    everything else (sweep records under ``<cache_dir>/sweeps/``,
    worker leases) hangs off it, which is what makes a SIGKILLed server
    resumable by simply starting a new one on the same directory.

    ``workers`` > 1 executes through a supervised multiprocess
    :class:`WorkerPool` per batch; otherwise a single in-process
    :class:`WorkerLoop` claims jobs continuously.  Use :meth:`start` /
    :meth:`stop` for embedding (tests), :meth:`serve_forever` for the
    CLI (installs SIGTERM/SIGINT handlers for a clean shutdown).
    """

    def __init__(
        self,
        cache_dir=None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: Optional[int] = None,
        retries: int = 1,
        lease_s: float = 30.0,
        point_timeout_s: Optional[float] = None,
        seed: int = 0,
        poll_s: float = 0.05,
    ):
        cache_dir = repro_config.cache_dir(cache_dir)
        if cache_dir is None:
            raise ConfigError(
                "repro serve needs a cache directory (--cache-dir or "
                "REPRO_CACHE_DIR): the result cache and job store are "
                "the service's durable state"
            )
        self.cache_dir = Path(cache_dir).expanduser()
        self.host = host
        self.port = port
        workers = repro_config.workers(workers)
        self.workers = max(1, workers if workers is not None else 1)
        self.retries = retries
        self.lease_s = lease_s
        self.point_timeout_s = point_timeout_s
        self.seed = seed
        self.poll_s = poll_s

        #: Service-level counters, exported at ``/v1/metrics`` under
        #: the ``serve.`` prefix (the job store's lifetime counters --
        #: which prove dedup and reclamation -- ride under ``store.``).
        self.counters: Dict[str, int] = {
            "http_requests": 0,
            "http_errors": 0,
            "sweeps_submitted": 0,
            "sweeps_deduped": 0,
            "jobs_enqueued": 0,
            "jobs_deduped": 0,
            "jobs_requeued": 0,
        }

        self._stop = threading.Event()
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._exec_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._front: Optional[JobStore] = None
        self._front_cache: Optional[ResultCache] = None
        self._sweeps: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    # Paths / identity
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def store_path(self) -> Path:
        return default_store_path(self.cache_dir)

    @property
    def sweeps_dir(self) -> Path:
        return self.cache_dir / "sweeps"

    @property
    def discovery_path(self) -> Path:
        """``<cache_dir>/serve.json``: where a live server advertises
        its URL and pid, so clients sharing the cache directory can
        find it without out-of-band configuration."""
        return self.cache_dir / "serve.json"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        """Start the HTTP thread and the executor; returns once the
        socket is bound (``self.port`` is then the real port, even when
        constructed with port 0)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._boot_error is not None:
            raise self._boot_error
        if not self._ready.is_set():
            raise ServiceError("repro serve failed to start within 30s")
        return self

    def stop(self) -> None:
        """Stop accepting requests, let the executor finish its current
        point, and join both threads."""
        self._stop.set()
        if self._exec_thread is not None:
            self._exec_thread.join(timeout=60.0)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def serve_forever(self, on_ready=None) -> None:
        """CLI entry: run until SIGTERM/SIGINT, then shut down cleanly
        (previous signal dispositions are restored on exit).
        ``on_ready(self)`` fires once the socket is bound -- i.e. after
        ``port=0`` has resolved to the real port."""
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_: self._stop.set()
            )
        try:
            self.start()
            if on_ready is not None:
                on_ready(self)
            while not self._stop.wait(0.2):
                if self._thread is not None and not self._thread.is_alive():
                    break
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()
            self._boot_error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._front = JobStore(
            self.store_path,
            lease_s=self.lease_s,
            quarantine_after=self.retries + 1,
        )
        self._front_cache = ResultCache(self.cache_dir)
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        _atomic_write_json(
            self.discovery_path,
            {
                "schema": SERVE_SCHEMA,
                "url": self.url,
                "host": self.host,
                "port": self.port,
                "pid": os.getpid(),
            },
        )
        self._exec_thread = threading.Thread(
            target=self._executor_main, name="repro-serve-exec", daemon=True
        )
        self._exec_thread.start()
        self._ready.set()
        try:
            async with server:
                while not self._stop.is_set():
                    await asyncio.sleep(0.05)
        finally:
            self._front.close()
            with contextlib.suppress(OSError):
                self.discovery_path.unlink()

    # ------------------------------------------------------------------
    # Execution backend (reuses the resilience substrate wholesale)
    # ------------------------------------------------------------------
    def _executor_main(self) -> None:
        store = JobStore(
            self.store_path,
            lease_s=self.lease_s,
            quarantine_after=self.retries + 1,
        )
        cache = ResultCache(self.cache_dir)
        try:
            if self.workers > 1:
                self._executor_pooled(store, cache)
            else:
                self._executor_inline(store, cache)
        finally:
            store.close()

    def _executor_inline(self, store: JobStore, cache: ResultCache) -> None:
        """Single in-process worker: claim anything claimable, forever.
        The same :class:`WorkerLoop` the engine's serial path uses, so
        leases, heartbeats, backoff, quarantine, and per-point
        watchdogs all behave identically."""
        loop = WorkerLoop(
            store,
            cache,
            keys=None,
            seed=self.seed,
            point_timeout_s=self.point_timeout_s,
        )
        while not self._stop.is_set():
            if loop.run_one() is None:
                self._stop.wait(self.poll_s)

    def _executor_pooled(self, store: JobStore, cache: ResultCache) -> None:
        """Multiprocess execution: batches of open jobs run through a
        supervised :class:`WorkerPool` (bounded batches keep shutdown
        latency bounded); whatever a pool leaves behind (restart budget
        exhausted) drains in-process so points are never stranded."""
        batch_cap = max(8, 4 * self.workers)
        while not self._stop.is_set():
            open_keys = [r.key for r in store.rows() if not r.terminal]
            if not open_keys:
                self._stop.wait(self.poll_s)
                continue
            batch = open_keys[:batch_cap]
            pool = WorkerPool(
                store,
                cache.root,
                workers=self.workers,
                lease_s=self.lease_s,
                quarantine_after=self.retries + 1,
                seed=self.seed,
                point_timeout_s=self.point_timeout_s,
            )
            pool.run(batch)
            if store.open_jobs(batch):
                WorkerLoop(
                    store,
                    cache,
                    keys=batch,
                    seed=self.seed,
                    point_timeout_s=self.point_timeout_s,
                ).drain()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            self.counters["http_requests"] += 1
            try:
                await self._route(method, path, query, body, writer)
            except (ConfigError, SchemaError) as exc:
                await self._send_json(writer, 400, wire.error_doc(str(exc)))
            except _NotFound as exc:
                await self._send_json(writer, 404, wire.error_doc(str(exc)))
            except Exception as exc:
                self.counters["http_errors"] += 1
                await self._send_json(
                    writer,
                    500,
                    wire.error_doc(f"{type(exc).__name__}: {exc}"),
                )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(length) if length > 0 else b""
        split = urlsplit(target)
        query = {
            k: v[-1] for k, v in parse_qs(split.query).items() if v
        }
        return method, split.path.rstrip("/") or "/", query, body

    async def _send(
        self, writer, status: int, payload: bytes, content_type: str
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _send_json(self, writer, status: int, doc: Dict) -> None:
        await self._send(
            writer,
            status,
            json.dumps(doc, sort_keys=True).encode(),
            "application/json",
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, query, body, writer) -> None:
        if path in ("/v1/healthz", "/healthz"):
            self._require(method, "GET")
            await self._send_json(writer, 200, self._health_doc())
        elif path == "/v1/metrics":
            self._require(method, "GET")
            await self._send(
                writer,
                200,
                self._metrics_text().encode(),
                "text/plain; version=0.0.4",
            )
        elif path == "/v1/report":
            self._require(method, "GET")
            await self._send(
                writer, 200, self._report_html(query).encode(), "text/html"
            )
        elif path == "/v1/sweeps":
            if method == "POST":
                status, doc = self._submit(body)
                await self._send_json(writer, status, doc)
            else:
                self._require(method, "GET")
                await self._send_json(writer, 200, self._sweep_list())
        elif path.startswith("/v1/sweeps/"):
            self._require(method, "GET")
            record = self._load_record(path[len("/v1/sweeps/"):])
            if query.get("stream") == "sse":
                await self._stream_sweep(writer, record)
            else:
                await self._poll_sweep(writer, record, query)
        elif path.startswith("/v1/jobs/"):
            self._require(method, "GET")
            await self._send_json(
                writer, 200, self._job_doc(path[len("/v1/jobs/"):])
            )
        else:
            raise _NotFound(
                f"no route for {path!r}; see docs/SERVICE.md for the "
                "endpoint list"
            )

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _NotFound(f"method {method} not allowed here")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _submit(self, body: bytes) -> Tuple[int, Dict]:
        try:
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            raise ConfigError("request body is not valid JSON") from None
        specs = wire.expand_sweep_request(data)
        store, cache = self._front, self._front_cache
        keys: List[str] = []
        created_jobs = 0
        for spec in specs:
            key = spec.key()
            keys.append(key)
            row = store.get(key)
            if row is None:
                created_jobs += 1
                self.counters["jobs_enqueued"] += 1
            elif row.status == "done" and cache.get(key) is None:
                # The row claims completion but the cached bytes are
                # gone (fsck eviction after corruption): resubmission
                # is an explicit request for the result, so re-run.
                store.requeue(key)
                created_jobs += 1
                self.counters["jobs_requeued"] += 1
            else:
                self.counters["jobs_deduped"] += 1
            store.enqueue(key, spec.describe(), _spec_blob(spec))
        sid = wire.sweep_id(keys)
        record = wire.sweep_record(sid, specs, keys)
        path = self.sweeps_dir / f"{sid}.json"
        if path.exists():
            self.counters["sweeps_deduped"] += 1
        else:
            _atomic_write_json(path, record)
            self.counters["sweeps_submitted"] += 1
        self._sweeps[sid] = record
        doc = self._sweep_status(record)
        doc["created_jobs"] = created_jobs
        doc["deduped_jobs"] = len(keys) - created_jobs
        return 202, doc

    def _load_record(self, sid: str) -> Dict:
        record = self._sweeps.get(sid)
        if record is None:
            try:
                record = json.loads(
                    (self.sweeps_dir / f"{sid}.json").read_text()
                )
                check_schema(record.get("schema"), SERVE_SCHEMA, "service")
            except (OSError, ValueError):
                raise _NotFound(f"unknown sweep {sid!r}") from None
            self._sweeps[sid] = record
        return record

    def _sweep_status(self, record: Dict) -> Dict:
        jobs_in = record["jobs"]
        rows = {
            r.key: r
            for r in self._front.rows([j["key"] for j in jobs_in])
        }
        jobs, counts = [], {}
        for entry in jobs_in:
            row = rows.get(entry["key"])
            if row is not None:
                status, attempts, error = row.status, row.attempts, row.error
            elif self._front_cache.get(entry["key"]) is not None:
                # Store rebuilt (corruption) but the result survives.
                status, attempts, error = "done", 0, None
            else:
                status, attempts, error = "unknown", 0, None
            counts[status] = counts.get(status, 0) + 1
            jobs.append(
                dict(entry, status=status, attempts=attempts, error=error)
            )
        done_ok = counts.get("done", 0)
        terminal = done_ok + counts.get("quarantined", 0)
        return {
            "schema": SERVE_SCHEMA,
            "id": record["id"],
            "total": len(jobs),
            "counts": counts,
            "done": terminal == len(jobs),
            "ok": done_ok == len(jobs),
            "jobs": jobs,
        }

    def _sweep_list(self) -> Dict:
        sweeps = []
        for path in sorted(self.sweeps_dir.glob("*.json")):
            try:
                doc = self._sweep_status(self._load_record(path.stem))
            except _NotFound:
                continue
            sweeps.append(
                {k: doc[k] for k in ("id", "total", "counts", "done", "ok")}
            )
        return {"schema": SERVE_SCHEMA, "sweeps": sweeps}

    def _job_doc(self, key: str) -> Dict:
        row = self._front.get(key)
        result = self._front_cache.get(key)
        if row is None and result is None:
            raise _NotFound(f"unknown job {key!r}")
        return {
            "schema": SERVE_SCHEMA,
            "key": key,
            "describe": row.describe if row is not None else "",
            "status": row.status if row is not None else "done",
            "attempts": row.attempts if row is not None else 0,
            "error": row.error if row is not None else None,
            "result": result.to_dict() if result is not None else None,
        }

    async def _poll_sweep(self, writer, record, query) -> None:
        try:
            wait_s = float(query.get("wait", "0"))
        except ValueError:
            raise ConfigError("?wait= must be a number of seconds") from None
        deadline = time.monotonic() + min(max(wait_s, 0.0), LONG_POLL_CAP_S)
        while True:
            doc = self._sweep_status(record)
            if (
                doc["done"]
                or time.monotonic() >= deadline
                or self._stop.is_set()
            ):
                await self._send_json(writer, 200, doc)
                return
            await asyncio.sleep(WATCH_POLL_S)

    async def _stream_sweep(self, writer, record) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        last = None
        while True:
            doc = self._sweep_status(record)
            snapshot = json.dumps(doc["counts"], sort_keys=True)
            if snapshot != last:
                last = snapshot
                payload = json.dumps(doc, sort_keys=True)
                writer.write(f"event: progress\ndata: {payload}\n\n".encode())
                await writer.drain()
            if doc["done"] or self._stop.is_set():
                writer.write(b"event: done\ndata: {}\n\n")
                await writer.drain()
                return
            await asyncio.sleep(WATCH_POLL_S)

    def _health_doc(self) -> Dict:
        counters = self._front.counters()
        return {
            "schema": SERVE_SCHEMA,
            "ok": True,
            "version": _version(),
            "url": self.url,
            "workers": self.workers,
            "uptime_s": round(time.time() - (self._started_at or 0), 3),
            "jobs": {
                name[len("jobs_"):]: value
                for name, value in counters.items()
                if name.startswith("jobs_")
            },
        }

    def _metrics_text(self) -> str:
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.add_counters(dict(self.counters), prefix="serve.")
        for name, value in self._front.counters().items():
            if name.startswith("jobs_"):
                reg.gauge("store." + name, value)
            else:
                reg.counter("store." + name, value)
        reg.gauge("serve.workers", self.workers)
        reg.gauge(
            "serve.uptime_seconds", time.time() - (self._started_at or 0)
        )
        return reg.to_prometheus()

    def _report_html(self, query) -> str:
        from repro.harness.sweep import add_speedups
        from repro.obs.html import render_sweep_report
        from repro.obs.report import load_cache_points

        points = load_cache_points(self.cache_dir)
        if not points:
            raise _NotFound(
                "no cached results yet; submit a sweep first "
                "(POST /v1/sweeps)"
            )
        baseline = query.get("baseline")
        if baseline:
            if not any(p.config == baseline for p in points):
                raise ConfigError(
                    f"baseline config {baseline!r} not in cache; have "
                    f"{sorted({p.config for p in points})}"
                )
            add_speedups(points, baseline)
        return render_sweep_report(
            points,
            baseline=baseline,
            title=f"repro serve report ({len(points)} cached points)",
            resilience=self._front.counters(),
        )


def _spec_blob(spec) -> Optional[bytes]:
    try:
        return pickle.dumps(spec)
    except Exception:
        return None


def _version() -> str:
    import repro

    return repro.__version__


def serve(
    cache_dir=None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
    **kwargs,
) -> Server:
    """Build a :class:`Server` and run it until SIGTERM/SIGINT (the
    blocking convenience behind ``python -m repro serve``).  Returns
    the (stopped) server, whose counters the CLI prints on exit."""
    server = Server(
        cache_dir=cache_dir, host=host, port=port, workers=workers, **kwargs
    )
    server.serve_forever()
    return server
