"""``repro serve``: a long-running experiment service over HTTP/JSON.

The service wraps the existing engine substrate -- the durable
:class:`~repro.resilience.store.JobStore`, the supervised worker fleet,
and the content-addressed result cache -- behind a small versioned
HTTP API, so many clients can share one execution backend and one
cache.  See :mod:`repro.serve.server` for the endpoint list,
:mod:`repro.serve.wire` for the JSON formats, :mod:`repro.client` for
the Python client, and ``docs/SERVICE.md`` for the guide.

Start it from the CLI::

    python -m repro serve --cache-dir .repro-cache --workers 4

or embed it (tests do this; ``port=0`` picks a free port)::

    from repro.serve import Server
    srv = Server(cache_dir=tmp, port=0).start()
    ...  # talk to srv.url
    srv.stop()
"""

from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    Server,
    serve,
)
from repro.serve.wire import (
    SWEEP_ID_LEN,
    expand_sweep_request,
    sweep_id,
    sweep_record,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "SWEEP_ID_LEN",
    "Server",
    "expand_sweep_request",
    "serve",
    "sweep_id",
    "sweep_record",
]
