"""Declarative fault plans.

A :class:`FaultPlan` is a deterministic, seed-driven description of
every fault a run should experience: NoC message faults (drop,
duplicate, extra delay) matched by kind/src/dst/cycle window, MSA slice
faults (fail-stop kills, flaky windows), and sync-unit issue-latency
perturbations.  Plans are immutable values -- the same plan + the same
machine seed reproduces the same fault sequence bit-for-bit.

Handing a plan to :class:`repro.machine.Machine` (or
``build_machine(..., fault_plan=...)``) arms the whole fault plane:
the reliable NoC transport, the sync units' timeout/retry machinery,
and the per-home-tile degradation map.  An *empty* plan injects nothing
but still arms the recovery layers, which is useful for measuring their
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.errors import ConfigError

#: Slice fault modes.
KILL = "kill"
"""Fail-stop: from ``at`` onward the slice ignores every message (its
entry/OMU state is lost).  Detected by the sync units' timeout/ping
machinery, which degrades the home tile to software synchronization."""

FLAKY_DROP = "flaky_drop"
"""The slice ignores each incoming ``msa.req`` with probability
``prob`` during the window (as if the request died at the last hop).
Recovered by idempotent request retries; never degrades the tile."""

FLAKY_ABORT = "flaky_abort"
"""The slice answers acquire-type requests that *miss* in its entry
array with ABORT (probability ``prob``), exercising the library's
ABORT fallbacks.  Requests with live entry state run normally -- an
abort there could split an episode between hardware and software."""

SLICE_MODES = (KILL, FLAKY_DROP, FLAKY_ABORT)


def _check_window(window: Tuple[int, Optional[int]], what: str) -> None:
    start, end = window
    if start < 0:
        raise ConfigError(f"{what}: window start must be >= 0")
    if end is not None and end <= start:
        raise ConfigError(f"{what}: window end must exceed start")


def _check_prob(value: float, what: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{what}: probability {value} outside [0, 1]")


@dataclass(frozen=True)
class MessageFault:
    """One NoC fault rule; the first rule matching a message applies."""

    kind_prefix: str = "msa"
    """Match messages whose kind starts with this prefix.  Recovery is
    only guaranteed for traffic the reliable transport covers
    (``msa.*`` / ``msa_cpu.*``); plans targeting coherence traffic are
    rejected by :meth:`FaultPlan.validate`."""

    src: Optional[int] = None
    """Source tile filter (None = any)."""

    dst: Optional[int] = None
    """Destination tile filter (None = any)."""

    window: Tuple[int, Optional[int]] = (0, None)
    """Half-open cycle window ``[start, end)`` (None = forever)."""

    drop_prob: float = 0.0
    """Probability the message vanishes at its final hop."""

    dup_prob: float = 0.0
    """Probability a duplicate copy is delivered ``dup_delay`` cycles
    after the original."""

    dup_delay: int = 20

    delay_prob: float = 0.0
    """Probability the message is held back at injection for an extra
    ``delay_cycles`` cycles (breaks FIFO relative to later traffic; the
    transport's reorder buffer restores per-channel order)."""

    delay_cycles: int = 50

    def validate(self) -> None:
        _check_window(self.window, "MessageFault")
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            _check_prob(getattr(self, name), f"MessageFault.{name}")
        if self.dup_delay < 1 or self.delay_cycles < 1:
            raise ConfigError("MessageFault delays must be >= 1 cycle")
        if not (
            self.kind_prefix.startswith("msa") or self.kind_prefix.startswith("rel")
        ):
            raise ConfigError(
                f"MessageFault targets {self.kind_prefix!r}: only msa/rel "
                "traffic is covered by the recovery transport"
            )

    def matches(self, kind: str, src: int, dst: int, now: int) -> bool:
        start, end = self.window
        return (
            kind.startswith(self.kind_prefix)
            and (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and start <= now
            and (end is None or now < end)
        )


@dataclass(frozen=True)
class SliceFault:
    """Mark one tile's MSA slice failed or flaky."""

    tile: int
    at: int
    """Cycle the fault takes effect."""

    mode: str = KILL
    until: Optional[int] = None
    """End of a flaky window (ignored for kills, which are permanent)."""

    prob: float = 1.0
    """Per-request fault probability in flaky modes."""

    def validate(self) -> None:
        if self.mode not in SLICE_MODES:
            raise ConfigError(
                f"SliceFault mode {self.mode!r}; options: {SLICE_MODES}"
            )
        if self.at < 0:
            raise ConfigError("SliceFault.at must be >= 0")
        if self.mode != KILL:
            _check_window((self.at, self.until), "SliceFault")
        _check_prob(self.prob, "SliceFault.prob")


@dataclass(frozen=True)
class LatencyFault:
    """Perturb sync-unit request issue latency (a jittery pipeline)."""

    core: Optional[int] = None
    """Core filter (None = every core)."""

    window: Tuple[int, Optional[int]] = (0, None)
    prob: float = 1.0
    extra_max: int = 30
    """Uniform extra fence latency in ``[1, extra_max]`` cycles."""

    def validate(self) -> None:
        _check_window(self.window, "LatencyFault")
        _check_prob(self.prob, "LatencyFault.prob")
        if self.extra_max < 1:
            raise ConfigError("LatencyFault.extra_max must be >= 1")

    def matches(self, core: int, now: int) -> bool:
        start, end = self.window
        return (
            (self.core is None or self.core == core)
            and start <= now
            and (end is None or now < end)
        )


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault script for one run."""

    seed: int = 0
    """Folded into the machine seed for the injector's RNG streams."""

    messages: Tuple[MessageFault, ...] = ()
    slices: Tuple[SliceFault, ...] = ()
    latencies: Tuple[LatencyFault, ...] = ()

    def validate(self, n_tiles: Optional[int] = None) -> None:
        for rule in self.messages:
            rule.validate()
        for rule in self.slices:
            rule.validate()
            if n_tiles is not None and not 0 <= rule.tile < n_tiles:
                raise ConfigError(
                    f"SliceFault.tile {rule.tile} out of range for "
                    f"{n_tiles} tiles"
                )
        for rule in self.latencies:
            rule.validate()

    @property
    def empty(self) -> bool:
        return not (self.messages or self.slices or self.latencies)


def drop_plan(
    prob: float, kind_prefix: str = "msa", seed: int = 0
) -> FaultPlan:
    """Convenience: a plan dropping ``prob`` of matching messages."""
    return FaultPlan(
        seed=seed,
        messages=(MessageFault(kind_prefix=kind_prefix, drop_prob=prob),),
    )
