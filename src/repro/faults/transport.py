"""Reliable, ordered delivery for accelerator traffic under NoC faults.

When a machine is armed with a fault plan, every ``msa.*`` /
``msa_cpu.*`` message rides a per-(src, dst) reliable channel layered
over the lossy fabric:

* the sender stamps each message with a channel sequence number
  (``Message.rel_seq``), keeps it buffered, and retransmits the oldest
  unacknowledged message on a timeout with bounded exponential backoff;
* the receiver delivers strictly in sequence order (a small reorder
  buffer absorbs delay-induced reordering), acknowledges cumulatively
  (``rel.ack``), and discards duplicates.

The upper protocols therefore keep the exactly-once, per-channel-FIFO
delivery contract they were designed against (docs/PROTOCOLS.md), even
while the fault injector drops, duplicates, or delays wire traffic.
What the transport deliberately does *not* hide is a dead endpoint: a
killed MSA slice still has a live tile transport (delivery succeeds,
the slice ignores the payload), so end-to-end liveness is the job of
the sync units' timeout/retry machinery (see ``repro.msa.isa``).

Acks themselves are unsequenced fire-and-forget messages; a lost ack
merely causes a retransmission, which the receiver re-acks.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.params import FaultParams
from repro.common.stats import StatSet
from repro.common.types import TileId
from repro.noc.message import Message

#: Kind prefixes carried reliably.  Coherence traffic stays on the raw
#: fabric (fault plans may not target it; see plan.validate()).
COVERED_PREFIXES = ("msa", "msa_cpu")

Channel = Tuple[TileId, TileId]


class _SendState:
    __slots__ = (
        "next_seq",
        "unacked",
        "attempts",
        "sent_at",
        "rto",
        "timer_armed",
    )

    def __init__(self, base_rto: int):
        self.next_seq = 0
        self.unacked: Dict[int, Message] = {}
        self.attempts: Dict[int, int] = {}
        self.sent_at: Dict[int, int] = {}
        self.rto = base_rto
        self.timer_armed = False


class _RecvState:
    __slots__ = ("expected", "buffer")

    def __init__(self):
        self.expected = 1
        self.buffer: Dict[int, Message] = {}


class ReliableTransport:
    """Sequencing, acknowledgment, and retransmission for MSA traffic."""

    #: Prefix set the network's send() hot path probes directly (one
    #: frozenset hit against Message.prefix, no string splitting).
    covered = frozenset(COVERED_PREFIXES)

    def __init__(self, sim, network, params: FaultParams, tracer=None):
        self.sim = sim
        self.network = network
        self.params = params
        self.tracer = tracer
        self.stats = StatSet("transport")
        for name in (
            "sent",
            "retransmits",
            "abandoned",
            "dup_suppressed",
            "reordered",
            "acks_sent",
        ):
            self.stats.counter(name)
        self._send: Dict[Channel, _SendState] = {}
        self._recv: Dict[Channel, _RecvState] = {}
        self._dead_dsts: set = set()
        for tile in range(network.topology.n_tiles):
            network.register(tile, "rel", self._on_ack)

    # ------------------------------------------------------------------
    @classmethod
    def covers(cls, kind: str) -> bool:
        return kind.split(".", 1)[0] in cls.covered

    def _trace(self, what: str, *detail) -> None:
        if self.tracer is not None and self.tracer.active:
            self.tracer.record("fault", "transport", what, *detail)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def abandon_tile(self, tile: TileId) -> None:
        """Stop retransmitting into a tile declared dead; subsequent
        sends to it go out fire-and-forget (the dead slice ignores them
        anyway, and the pending timers must not keep the event heap
        alive forever)."""
        self._dead_dsts.add(tile)
        for (_, dst), state in self._send.items():
            if dst == tile:
                state.unacked.clear()
                state.attempts.clear()
                state.sent_at.clear()

    def send(self, message: Message) -> None:
        """Stamp, buffer, and inject a covered message."""
        if message.dst in self._dead_dsts:
            self.network.inject(message)
            return
        chan = (message.src, message.dst)
        state = self._send.get(chan)
        if state is None:
            state = self._send[chan] = _SendState(self.params.retransmit_timeout)
        state.next_seq += 1
        message.rel_seq = state.next_seq
        state.unacked[message.rel_seq] = message
        state.sent_at[message.rel_seq] = self.sim.now
        self.stats.counter("sent").inc()
        self.network.inject(message)
        if not state.timer_armed:
            state.timer_armed = True
            self.sim.schedule(state.rto, lambda: self._on_timer(chan))

    def _on_timer(self, chan: Channel) -> None:
        state = self._send[chan]
        while state.unacked:
            oldest = min(state.unacked)
            tries = state.attempts.get(oldest, 0) + 1
            if tries <= self.params.max_retransmits:
                break
            # Give up on this message (dead or pathologically lossy
            # endpoint); end-to-end recovery is the sync units' job.
            del state.unacked[oldest]
            state.attempts.pop(oldest, None)
            state.sent_at.pop(oldest, None)
            self.stats.counter("abandoned").inc()
            self._trace("abandon", f"chan={chan}", f"seq={oldest}")
        if not state.unacked:
            state.timer_armed = False
            state.rto = self.params.retransmit_timeout
            return
        oldest = min(state.unacked)
        # The timer is per channel, not per message: when it was armed
        # for an earlier (since-acked) message, the current oldest may
        # not have aged a full RTO yet -- wait out the remainder rather
        # than retransmitting a message whose ack is still in flight.
        elapsed = self.sim.now - state.sent_at.get(oldest, self.sim.now)
        if elapsed < state.rto:
            self.sim.schedule(
                state.rto - elapsed, lambda: self._on_timer(chan)
            )
            return
        state.attempts[oldest] = state.attempts.get(oldest, 0) + 1
        state.sent_at[oldest] = self.sim.now
        self.stats.counter("retransmits").inc()
        self._trace("retransmit", f"chan={chan}", f"seq={oldest}")
        self.network.inject(state.unacked[oldest])
        state.rto = min(state.rto * 2, self.params.retransmit_timeout_max)
        self.sim.schedule(state.rto, lambda: self._on_timer(chan))

    def _on_ack(self, msg: Message) -> None:
        # The ack's (src, dst) is the reverse of the data channel.
        chan = (msg.dst, msg.src)
        state = self._send.get(chan)
        if state is None:
            return
        upto = msg.payload["upto"]
        progressed = False
        for seq in [s for s in state.unacked if s <= upto]:
            del state.unacked[seq]
            state.attempts.pop(seq, None)
            state.sent_at.pop(seq, None)
            progressed = True
        if progressed:
            state.rto = self.params.retransmit_timeout

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def receive(self, message: Message, dispatch) -> None:
        """Order, deduplicate, and acknowledge an arriving message;
        ``dispatch(msg)`` is called for each in-sequence delivery."""
        chan = (message.src, message.dst)
        state = self._recv.get(chan)
        if state is None:
            state = self._recv[chan] = _RecvState()
        seq = message.rel_seq
        if seq < state.expected:
            self.stats.counter("dup_suppressed").inc()
        elif seq == state.expected:
            state.expected += 1
            dispatch(message)
            while state.expected in state.buffer:
                queued = state.buffer.pop(state.expected)
                state.expected += 1
                dispatch(queued)
        elif seq in state.buffer:
            self.stats.counter("dup_suppressed").inc()
        else:
            self.stats.counter("reordered").inc()
            state.buffer[seq] = message
        self.stats.counter("acks_sent").inc()
        self.network.inject(
            Message(
                src=message.dst,
                dst=message.src,
                kind="rel.ack",
                payload={"upto": state.expected - 1},
            )
        )
