"""Per-home-tile degradation map and lock-recovery gate.

When a sync unit's timeout/retry machinery gives up on a home tile (no
response, no accept, no pong across ``max_retries`` backoff windows),
it calls :meth:`FaultPlane.declare_dead`.  From then on that tile is
*degraded*: every sync instruction targeting it completes locally with
FAIL (FINISH with SUCCESS), which is exactly the paper's MSA-0
behaviour applied to a single home tile -- the hybrid library falls
back to software synchronization for those addresses while every other
tile keeps its accelerator.

Declaring a tile dead must not break mutual exclusion: a core may hold
a lock through a *hardware* grant recorded only in the dead slice's
entry array, while the lock's software word still reads "free".  The
plane therefore scans every sync unit for hardware-held locks homed at
the dead tile (``surrender_tile``) and parks them in a recovery table.
Software fallback acquires consult the table and wait on a *gate*
future until the hardware holder releases; the holder's UNLOCK (which
now FAILs locally) is translated by the library into
:meth:`transfer_release`, which retires the orphaned grant and opens
the gate.  The lock word itself is never patched behind the coherence
protocol's back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.stats import StatSet
from repro.common.types import Address, CoreId, TileId
from repro.sim.kernel import Future


class FaultPlane:
    """Degradation state shared by sync units, slices, and the library."""

    def __init__(self, sim, tracer=None):
        self.sim = sim
        self.tracer = tracer
        self.stats = StatSet("fault_plane")
        self.stats.counter("degraded_tiles")
        self.degraded: Set[TileId] = set()
        self._recovery: Dict[Address, CoreId] = {}
        self._gates: Dict[Address, List[Future]] = {}
        self._units = ()
        self._transport = None

    def attach(self, units, transport) -> None:
        self._units = tuple(units)
        self._transport = transport

    def _trace(self, what: str, *detail) -> None:
        if self.tracer is not None and self.tracer.active:
            self.tracer.record("degrade", "plane", what, *detail)

    # ------------------------------------------------------------------
    def is_degraded(self, tile: TileId) -> bool:
        return tile in self.degraded

    def declare_dead(self, tile: TileId) -> None:
        """Degrade ``tile``: harvest orphaned hardware lock grants into
        the recovery table, fail every request still pending against the
        tile, and stop the transport from retransmitting into it."""
        if tile in self.degraded:
            return
        self.degraded.add(tile)
        self.stats["degraded_tiles"].inc()
        self._trace("declare_dead", f"tile={tile}")
        if self._transport is not None:
            self._transport.abandon_tile(tile)
        # Harvest before failing: a FAILed UNLOCK must find its lock in
        # the recovery table so the library retires it via
        # transfer_release instead of unlocking a free software word.
        for unit in self._units:
            for addr in unit.surrender_tile(tile):
                self._recovery[addr] = unit.core_id
                self._trace("orphan_lock", f"addr={addr:#x}", f"holder={unit.core_id}")
        for unit in self._units:
            unit.fail_pending_to(tile)

    # ------------------------------------------------------------------
    # Recovery table / gate
    # ------------------------------------------------------------------
    def recovery_held(self, addr: Address) -> bool:
        """The lock is still held through an orphaned hardware grant."""
        return addr in self._recovery

    def recovery_holder(self, addr: Address) -> Optional[CoreId]:
        return self._recovery.get(addr)

    def gate_future(self, addr: Address) -> Optional[Future]:
        """A future completing when the orphaned grant on ``addr`` is
        released; ``None`` when no orphaned grant exists (software may
        proceed immediately)."""
        if addr not in self._recovery:
            return None
        fut = Future(self.sim)
        self._gates.setdefault(addr, []).append(fut)
        return fut

    def transfer_release(self, addr: Address) -> bool:
        """Retire an orphaned hardware grant (called from the holder's
        failed UNLOCK).  Returns False when ``addr`` has none -- the
        caller then performs a normal software release."""
        if addr not in self._recovery:
            return False
        holder = self._recovery.pop(addr)
        self._trace("transfer_release", f"addr={addr:#x}", f"holder={holder}")
        for fut in self._gates.pop(addr, []):
            fut.complete()
        return True
