"""Fault injection and recovery (see docs/PROTOCOLS.md, "Fault model
& recovery").

Public surface:

* :class:`FaultPlan` and its rule types -- declarative, seed-driven
  fault scripts (NoC drop/duplicate/delay, slice kill/flaky windows,
  issue-latency jitter);
* :class:`FaultInjector` -- evaluates a plan against live events;
* :class:`ReliableTransport` -- exactly-once, per-channel-ordered
  delivery for ``msa.*``/``msa_cpu.*`` traffic over the lossy fabric;
* :class:`FaultPlane` -- the per-home-tile degradation map and the
  orphaned-lock recovery gate.

Build a faulty machine with ``Machine(params, fault_plan=plan)`` or
``build_machine(config, fault_plan=plan)``.  Without a plan none of
this machinery is constructed and runs are bit-for-bit identical to a
fault-free build.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    FLAKY_ABORT,
    FLAKY_DROP,
    KILL,
    FaultPlan,
    LatencyFault,
    MessageFault,
    SliceFault,
    drop_plan,
)
from repro.faults.plane import FaultPlane
from repro.faults.transport import ReliableTransport

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlane",
    "LatencyFault",
    "MessageFault",
    "ReliableTransport",
    "SliceFault",
    "drop_plan",
    "KILL",
    "FLAKY_DROP",
    "FLAKY_ABORT",
]
