"""The fault injector: turns a :class:`FaultPlan` into run-time verdicts.

The injector is purely decision-making -- it never touches the network
or slices itself.  The NoC asks it for a verdict at injection time
(extra delay) and at final-hop delivery time (drop / duplicate); slices
ask it whether to misbehave on a request during a flaky window; sync
units ask it for issue-latency jitter.  All randomness comes from
per-purpose :class:`~repro.sim.rng.DeterministicRng` streams derived
from ``machine seed ^ plan seed``, so a given (machine, plan) pair
replays the identical fault sequence.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.stats import StatSet
from repro.noc.message import Message
from repro.sim.rng import DeterministicRng

from repro.faults.plan import FLAKY_ABORT, FLAKY_DROP, KILL, FaultPlan, SliceFault


class FaultInjector:
    """Evaluates a plan's rules against live machine events."""

    def __init__(self, sim, plan: FaultPlan, machine_seed: int, tracer=None):
        self.sim = sim
        self.plan = plan
        self.tracer = tracer
        self.stats = StatSet("faults")
        root = DeterministicRng(machine_seed ^ (plan.seed * 0x9E3779B1), "faults")
        self._msg_rng = root.derive("messages")
        self._slice_rng = root.derive("slices")
        self._lat_rng = root.derive("latency")
        # Counters exist from cycle 0 so reports are uniform.
        for name in ("msgs_dropped", "msgs_duplicated", "msgs_delayed",
                     "flaky_drops", "flaky_aborts", "latency_perturbed"):
            self.stats.counter(name)

    def _trace(self, what: str, *detail) -> None:
        if self.tracer is not None and self.tracer.active:
            self.tracer.record("fault", "inject", what, *detail)

    # ------------------------------------------------------------------
    # NoC faults
    # ------------------------------------------------------------------
    def _rule_for(self, message: Message):
        now = self.sim.now
        for rule in self.plan.messages:
            if rule.matches(message.kind, message.src, message.dst, now):
                return rule
        return None

    def send_delay(self, message: Message) -> int:
        """Extra injection delay (cycles) for this message, usually 0."""
        rule = self._rule_for(message)
        if rule is None or rule.delay_prob <= 0.0:
            return 0
        if self._msg_rng.random() >= rule.delay_prob:
            return 0
        self.stats["msgs_delayed"].inc()
        self._trace("delay", message.kind, f"{message.src}->{message.dst}",
                    f"+{rule.delay_cycles}")
        return rule.delay_cycles

    def deliver_verdict(self, message: Message) -> Tuple[bool, Optional[int]]:
        """(deliver?, duplicate-after-cycles) for a message at its last hop."""
        rule = self._rule_for(message)
        if rule is None:
            return True, None
        if rule.drop_prob > 0.0 and self._msg_rng.random() < rule.drop_prob:
            self.stats["msgs_dropped"].inc()
            self._trace("drop", message.kind, f"{message.src}->{message.dst}")
            return False, None
        if rule.dup_prob > 0.0 and self._msg_rng.random() < rule.dup_prob:
            self.stats["msgs_duplicated"].inc()
            self._trace("dup", message.kind, f"{message.src}->{message.dst}")
            return True, rule.dup_delay
        return True, None

    # ------------------------------------------------------------------
    # Slice faults
    # ------------------------------------------------------------------
    def kill_schedule(self) -> List[SliceFault]:
        return [f for f in self.plan.slices if f.mode == KILL]

    def flaky_verdict(self, tile: int, entry_hit: bool) -> Optional[str]:
        """What a flaky slice should do with an incoming request.

        Returns ``None`` (behave), ``"drop"`` (ignore the request), or
        ``"abort"`` (answer ABORT).  Aborts are only offered for
        requests *missing* in the entry array -- the caller must still
        check the request is an acquire-type op it can safely abort.
        """
        now = self.sim.now
        for rule in self.plan.slices:
            if rule.tile != tile or rule.mode == KILL:
                continue
            if now < rule.at or (rule.until is not None and now >= rule.until):
                continue
            if self._slice_rng.random() >= rule.prob:
                continue
            if rule.mode == FLAKY_DROP:
                self.stats["flaky_drops"].inc()
                self._trace("flaky_drop", f"tile={tile}")
                return "drop"
            if rule.mode == FLAKY_ABORT and not entry_hit:
                self.stats["flaky_aborts"].inc()
                self._trace("flaky_abort", f"tile={tile}")
                return "abort"
        return None

    # ------------------------------------------------------------------
    # Latency faults
    # ------------------------------------------------------------------
    def issue_delay(self, core: int) -> int:
        """Extra sync-instruction fence latency for this issue, usually 0."""
        now = self.sim.now
        for rule in self.plan.latencies:
            if not rule.matches(core, now):
                continue
            if rule.prob < 1.0 and self._lat_rng.random() >= rule.prob:
                continue
            self.stats["latency_perturbed"].inc()
            return self._lat_rng.randint(1, rule.extra_max)
        return 0
