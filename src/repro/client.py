"""Python client for the ``repro serve`` experiment service.

A thin stdlib-only (``urllib``) wrapper over the versioned HTTP API of
:mod:`repro.serve`, mirroring the :mod:`repro.api` verbs::

    from repro.client import Client

    c = Client("http://127.0.0.1:8765")      # or REPRO_SERVER
    sid = c.submit(configs=["pthread", "msa-omu-2"],
                   workloads=["canneal"], cores=[16], scale=0.25)
    c.wait(sid)                               # long-polls until done
    points = c.fetch(sid)                     # List[SweepPoint]

Results are reconstructed with :meth:`RunResult.from_dict` from the
server's cached bytes, so a fetched point serializes byte-identically
to the same point run locally -- the service changes *where* a sweep
runs, never *what* it produces.  ``repro.api.sweep(..., server=URL)``
uses this client transparently.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.common import config as repro_config
from repro.common.errors import ConfigError, ServiceError
from repro.common.schema import SERVE_SCHEMA
from repro.harness.runner import RunResult
from repro.harness.sweep import SweepPoint

DEFAULT_TIMEOUT_S = 600.0
#: Per-request ``?wait=`` chunk while :meth:`Client.wait` long-polls
#: (the server caps each request; the client re-issues until done).
WAIT_CHUNK_S = 30.0


class Client:
    """One experiment-service endpoint (see module docstring).

    ``server`` falls back to the ``REPRO_SERVER`` environment knob
    (see :mod:`repro.common.config`); a missing endpoint is a
    :class:`ConfigError` at construction, not a connection error
    later."""

    def __init__(self, server: Optional[str] = None, timeout_s: float = DEFAULT_TIMEOUT_S):
        server = repro_config.server(server)
        if server is None:
            raise ConfigError(
                "no server endpoint: pass server= or set REPRO_SERVER "
                "(e.g. http://127.0.0.1:8765)"
            )
        self.base = str(server).rstrip("/")
        if not self.base.startswith(("http://", "https://")):
            self.base = "http://" + self.base
        self.timeout_s = timeout_s
        #: Per-sweep submission accounting from the last ``submit``
        #: of each id: ``{sid: (created_jobs, deduped_jobs)}``.
        self.submissions: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        body: Optional[Dict] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict:
        data = None
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode()
        req = urllib.request.Request(
            self.base + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                req, timeout=timeout_s if timeout_s is not None else self.timeout_s
            ) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except Exception:
                message = ""
            raise ServiceError(
                f"{path}: HTTP {exc.code}"
                + (f": {message}" if message else "")
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base}: {exc.reason}"
            ) from None

    def _request_text(self, path: str) -> str:
        try:
            with urllib.request.urlopen(
                self.base + path, timeout=self.timeout_s
            ) as resp:
                return resp.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(f"{path}: HTTP {exc.code}") from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # Verbs (mirror repro.api.sweep's keywords)
    # ------------------------------------------------------------------
    def submit(
        self,
        configs: Union[str, Sequence[str]],
        workloads: Union[str, Sequence[str]],
        cores: Union[int, Sequence[int]] = (16,),
        scale: float = 1.0,
        seed: int = 2015,
        params: Optional[Dict[str, Any]] = None,
        check: bool = True,
        checkers: Sequence[str] = (),
        max_events: Optional[int] = None,
    ) -> str:
        """Submit a sweep grid; returns the sweep id (content-addressed
        -- resubmitting the same grid returns the same id and runs
        nothing that is already done or in flight)."""
        body: Dict[str, Any] = {
            "schema": SERVE_SCHEMA,
            "configs": [configs] if isinstance(configs, str) else list(configs),
            "workloads": (
                [workloads] if isinstance(workloads, str) else list(workloads)
            ),
            "cores": [cores] if isinstance(cores, int) else list(cores),
            "scale": scale,
            "seed": seed,
            "check": check,
            "checkers": list(checkers),
        }
        if params:
            body["params"] = dict(params)
        if max_events is not None:
            body["max_events"] = max_events
        doc = self._request("/v1/sweeps", body=body)
        sid = doc["id"]
        self.submissions[sid] = {
            "created_jobs": doc.get("created_jobs", 0),
            "deduped_jobs": doc.get("deduped_jobs", 0),
        }
        return sid

    def status(self, sweep_id: str) -> Dict:
        """The sweep's status document: per-job status rows, status
        counts, and the ``done``/``ok`` rollups."""
        return self._request(f"/v1/sweeps/{sweep_id}")

    def wait(self, sweep_id: str, timeout_s: Optional[float] = None) -> Dict:
        """Long-poll until every job is terminal; returns the final
        status document.  Raises :class:`ServiceError` on timeout or if
        any job was quarantined (its per-job ``error`` strings are in
        the message)."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            chunk = WAIT_CHUNK_S
            if deadline is not None:
                chunk = min(chunk, max(deadline - time.monotonic(), 0.0))
            doc = self._request(
                f"/v1/sweeps/{sweep_id}?wait={chunk:g}",
                timeout_s=self.timeout_s + chunk,
            )
            if doc["done"]:
                if not doc["ok"]:
                    bad = [
                        f"{j['config']}/{j['workload']}: {j['error']}"
                        for j in doc["jobs"]
                        if j["status"] == "quarantined"
                    ]
                    raise ServiceError(
                        f"sweep {sweep_id} finished with failures: "
                        + "; ".join(bad)
                    )
                return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"sweep {sweep_id} not done within {timeout_s:g}s "
                    f"(counts: {doc['counts']})"
                )

    def fetch(self, sweep_id: str) -> List[SweepPoint]:
        """Fetch a finished sweep's results as
        :class:`~repro.harness.sweep.SweepPoint` rows, in submission
        order -- the same order and bytes a local ``api.sweep`` of the
        same grid produces."""
        doc = self.status(sweep_id)
        points = []
        for job in doc["jobs"]:
            jd = self.fetch_job(job["key"])
            if jd["result"] is None:
                raise ServiceError(
                    f"job {job['key'][:12]} ({job['config']}/"
                    f"{job['workload']}) has no result yet "
                    f"(status: {jd['status']})"
                )
            points.append(
                SweepPoint(
                    config=job["config"],
                    workload=job["workload"],
                    n_cores=job["cores"],
                    scale=job["scale"],
                    result=RunResult.from_dict(jd["result"]),
                )
            )
        return points

    def fetch_job(self, key: str) -> Dict:
        """One job's document (status, attempts, error, and -- when
        done -- its serialized :class:`RunResult`)."""
        return self._request(f"/v1/jobs/{key}")

    def sweeps(self) -> List[Dict]:
        """Summaries of every sweep the server knows about."""
        return self._request("/v1/sweeps")["sweeps"]

    def healthz(self) -> Dict:
        return self._request("/v1/healthz")

    def metrics(self) -> str:
        """The server's ``/v1/metrics`` Prometheus text."""
        return self._request_text("/v1/metrics")

    def report(self, baseline: Optional[str] = None) -> str:
        """The server's cache-wide HTML sweep report."""
        path = "/v1/report"
        if baseline:
            path += f"?baseline={baseline}"
        return self._request_text(path)


def discover(cache_dir=None) -> Optional[str]:
    """URL of a live server advertising on ``cache_dir`` (via the
    ``serve.json`` discovery file a running server maintains), or
    ``None``.  Lets co-located tools find the service without
    configuration."""
    cache_dir = repro_config.cache_dir(cache_dir)
    if cache_dir is None:
        return None
    from pathlib import Path

    path = Path(cache_dir).expanduser() / "serve.json"
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    url = doc.get("url")
    return url if isinstance(url, str) else None


__all__ = ["Client", "DEFAULT_TIMEOUT_S", "discover"]
