"""repro.obs -- unified observability: spans, metrics, exporters, reports.

The simulator already *produces* everything an investigation needs --
``Stats`` counters and histograms in every subsystem, the
:class:`~repro.verify.events.Probe` event bus, the
:class:`~repro.sim.trace.Tracer`, fault counters, checker verdicts --
but each spoke its own dialect.  This package is the hub:

* :class:`~repro.obs.collect.Collector` -- attaches to a
  :class:`~repro.machine.Machine` *before threads spawn*, subscribes to
  the probe bus, and assembles hierarchical :class:`~repro.obs.spans.Span`
  intervals over simulated time (run > phase > sync episode / MSA entry
  / NoC message).  Zero-cost when not attached: the default machine
  keeps ``machine.probe is None`` and every emit site is a single
  attribute test.
* :class:`~repro.obs.registry.MetricsRegistry` -- one schema over all
  counters, gauges, and histogram summaries, whatever subsystem they
  came from; merges across runs; exports JSONL (lossless round-trip)
  and Prometheus text format.
* :mod:`~repro.obs.export` -- span JSONL and Chrome trace-event JSON
  (Perfetto-loadable, schema-valid pid/tid on every record).
* :mod:`~repro.obs.html` / :mod:`~repro.obs.report` -- self-contained
  HTML reports: one run (cycle attribution, OMU timeline, NoC latency)
  or a whole cached sweep (``python -m repro report``), rendered
  without re-simulating.

Quickstart (see also ``examples/observability.py`` and
``docs/OBSERVABILITY.md``)::

    from repro.harness.configs import build_machine
    from repro.harness.runner import run_workload
    from repro.workloads.kernels import KERNELS
    from repro.obs import Collector

    machine = build_machine("msa-omu-2", n_cores=4)
    collector = Collector.attach(machine)     # before threads spawn
    result = run_workload(machine, KERNELS["histogram"](4, scale=0.1),
                          config="msa-omu-2")
    obs = collector.finalize()
    print(obs.describe())
    obs.to_chrome_trace("trace.json")         # open in Perfetto
    obs.registry.to_prometheus("metrics.prom")
"""

from repro.obs.collect import DEFAULT_SPAN_LIMIT, Collector, ObsResult
from repro.obs.export import (
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.obs.html import render_run_report, render_sweep_report
from repro.obs.registry import Metric, MetricsRegistry, summarize_histogram
from repro.obs.report import load_cache_points, report_from_cache
from repro.obs.spans import Span

__all__ = [
    "Collector",
    "ObsResult",
    "DEFAULT_SPAN_LIMIT",
    "Span",
    "Metric",
    "MetricsRegistry",
    "summarize_histogram",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "render_run_report",
    "render_sweep_report",
    "load_cache_points",
    "report_from_cache",
]
