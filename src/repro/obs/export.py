"""Span exporters: JSONL and Chrome trace-event format.

Three interchange formats leave the observability layer:

* **Spans as JSONL** -- one :class:`~repro.obs.spans.Span` dict per
  line plus a final metadata line (retention drops), the lossless form
  (:func:`spans_to_jsonl` / :func:`spans_from_jsonl` round-trip).
* **Chrome trace-event JSON** -- complete duration events (``ph: "X"``)
  loadable in Perfetto / ``chrome://tracing``; one process per span
  category, one virtual thread per ``tid``/``tile``
  (:func:`spans_to_chrome_trace`).  Every record carries integer
  ``pid``/``tid`` fields, which the viewers require.
* **Prometheus / metrics JSONL** -- see
  :class:`repro.obs.registry.MetricsRegistry`.

Raw (unpaired) tracer events keep their own exporter on
:class:`repro.sim.trace.Tracer`; this module is for the span forest.

>>> from repro.obs.spans import Span
>>> spans = [Span(1, "run", "run", 0, 90), Span(2, "lock.acquire",
...          "sync", 5, 17, tid=0, parent=1, attrs={"addr": 64})]
>>> spans_from_jsonl(spans_to_jsonl(spans)) == spans
True
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.spans import Span


def spans_to_jsonl(
    spans: List[Span], path=None, dropped: Optional[Dict[str, int]] = None
) -> str:
    """Serialize spans as JSON Lines (one span per line, sorted keys);
    a final ``{"meta": "obs.spans", ...}`` line records retention
    drops.  Writes to ``path`` when given; returns the text."""
    lines = [json.dumps(s.to_dict(), sort_keys=True) for s in spans]
    if dropped:
        lines.append(
            json.dumps(
                {"meta": "obs.spans", "dropped": dict(sorted(dropped.items()))},
                sort_keys=True,
            )
        )
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def spans_from_jsonl(text: str) -> List[Span]:
    """Inverse of :func:`spans_to_jsonl` (metadata lines are skipped)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if "meta" in data:
            continue
        spans.append(Span.from_dict(data))
    return spans


def spans_to_chrome_trace(spans: List[Span], path=None) -> str:
    """Export spans as Chrome trace-event JSON.

    Layout: one *process* per span category (``run``, ``phase``,
    ``sync``, ``msa``, ``noc``), one *thread* per ``tid`` (sync spans)
    or ``tile`` (msa/noc spans); closed spans are complete events
    (``ph: "X"`` with ``dur``), still-open spans instants (``ph: "i"``).
    Cycle timestamps map onto the microsecond field.  Every event
    carries integer ``pid`` and ``tid`` fields (viewers drop records
    without them).
    """
    categories = sorted({s.cat for s in spans})
    pids = {cat: index + 1 for index, cat in enumerate(categories)}
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pids[cat],
            "tid": 0,
            "args": {"name": f"obs.{cat}"},
        }
        for cat in categories
    ]
    thread_names = {}
    for span in spans:
        pid = pids[span.cat]
        tid, tname = _virtual_thread(span)
        if (pid, tid) not in thread_names:
            thread_names[(pid, tid)] = tname
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        name = span.name
        if span.name == "phase" and span.attrs.get("label"):
            name = f"phase:{span.attrs['label']}"
        record = {
            "name": name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": span.start,
            "args": {
                k: (v if isinstance(v, (int, float, str, bool)) else str(v))
                for k, v in span.attrs.items()
            },
        }
        if span.end is None:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = span.duration
        out.append(record)
    text = json.dumps({"traceEvents": out, "displayTimeUnit": "ns"})
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def _virtual_thread(span: Span):
    """(tid number, display name) for a span's virtual thread."""
    if span.tid is not None:
        return int(span.tid), f"thread {span.tid}"
    if span.tile is not None:
        return int(span.tile), f"tile {span.tile}"
    return 0, "machine"
