"""The collector: turns Probe events into spans and aggregates.

:class:`Collector` subscribes to the machine's checker event bus
(:class:`repro.verify.events.Probe`) and assembles the span forest
described in :mod:`repro.obs.spans`: one ``run`` root, optional
``phase`` children, per-thread synchronization episodes, MSA entry
residencies, and (sampled) NoC message lifetimes.  It also folds every
closed span into per-name duration histograms, so cycle *attribution*
stays exact even after span retention is capped.

Observation is passive and synchronous: attaching a collector never
schedules simulator events, so cycle counts, event counts, and every
counter are bit-for-bit identical to an unobserved run (the same
contract :mod:`repro.verify` honours; ``tests/test_obs.py`` pins it).
A machine with no collector (and no checkers) has ``machine.probe is
None`` and pays exactly one attribute test per call site -- the PR 4
perf gate is measured in that state.

Usage::

    from repro import api
    from repro.obs import Collector

    machine = api.build("msa-omu-2", cores=16)
    collector = Collector.attach(machine)
    with collector.phase("main"):
        result = api.run(machine, "streamcluster", scale=0.5)
    obs = collector.finalize()
    obs.registry.to_prometheus("metrics.prom")
    obs.to_chrome_trace("trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.common.stats import Histogram
from repro.obs.registry import MetricsRegistry, summarize_histogram
from repro.obs.spans import Span

#: Per-name cap on *retained* spans (aggregation stays exact beyond it).
DEFAULT_SPAN_LIMIT = 20_000

#: Sync-episode span names by the probe kinds that open/close them.
_ACQUIRE = {"lock_req": "lock.acquire"}
_PAIRS = {
    "barrier_enter": ("barrier_exit", "barrier.wait"),
    "cond_wait_begin": ("cond_wait_end", "cond.wait"),
}


class ObsResult:
    """What one observed run produced: the span forest, the unified
    metrics registry, and the OMU transition timeline."""

    def __init__(
        self,
        spans: List[Span],
        registry: MetricsRegistry,
        omu_timeline: List[Tuple[int, int, str, int]],
        dropped_spans: Dict[str, int],
    ):
        self.spans = spans
        self.registry = registry
        self.omu_timeline = omu_timeline
        """(cycle, tile, event, value) OMU state transitions, where
        ``event`` is ``inc``/``dec``/``steer`` and ``value`` is the
        charge amount (1 for steer)."""

        self.dropped_spans = dropped_spans
        """Per-name count of spans not retained (cap exceeded); their
        durations are still in the ``obs.span.cycles`` histograms."""

    # Convenience re-exports so callers need only the result object.
    def to_jsonl(self, path=None) -> str:
        from repro.obs.export import spans_to_jsonl

        return spans_to_jsonl(self.spans, path, dropped=self.dropped_spans)

    def to_chrome_trace(self, path=None) -> str:
        from repro.obs.export import spans_to_chrome_trace

        return spans_to_chrome_trace(self.spans, path)

    def attribution(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name cycle attribution: {name: {count, cycles,
        mean, max}} -- the paper-style 'where did the sync cycles go'
        table, exact over every span ever closed."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self.registry.metrics():
            if metric.name != "obs.span.cycles" or metric.kind != "histogram":
                continue
            name = metric.labels.get("span", "?")
            s = metric.summary or {}
            out[name] = {
                "count": s.get("count", 0),
                "cycles": s.get("sum", 0),
                "mean": (s.get("sum", 0) / s.get("count", 1)) if s.get("count") else 0.0,
                "max": s.get("max", 0),
            }
        return out

    def describe(self) -> str:
        lines = [
            f"obs: {len(self.spans)} spans retained, "
            f"{len(self.registry)} metrics, "
            f"{len(self.omu_timeline)} OMU transitions"
        ]
        attribution = self.attribution()
        for name in sorted(attribution):
            a = attribution[name]
            lines.append(
                f"  {name:<14} n={int(a['count']):<8} "
                f"cycles={int(a['cycles']):<12} mean={a['mean']:.1f}"
            )
        if self.dropped_spans:
            drops = ", ".join(
                f"{k}={v}" for k, v in sorted(self.dropped_spans.items())
            )
            lines.append(f"  (span retention cap hit: {drops})")
        return "\n".join(lines)


class Collector:
    """Builds spans and metrics from one machine's probe events.

    Create through :meth:`attach` (wires the probe in, reusing a
    checker suite's probe when one is already attached).  Finalize
    exactly once, after the run, with :meth:`finalize`.
    """

    def __init__(self, machine, span_limit: int = DEFAULT_SPAN_LIMIT):
        self.machine = machine
        self.span_limit = span_limit
        self.spans: List[Span] = []
        self.omu_timeline: List[Tuple[int, int, str, int]] = []
        self._next_sid = 1
        self._dropped: Dict[str, int] = {}
        self._durations: Dict[str, Histogram] = {}
        self._counts: Dict[str, int] = {}
        # Open-span state, keyed by what matches an open to its close.
        self._open_sync: Dict[Tuple[str, int, int], Span] = {}
        self._held: Dict[Tuple[int, int], Span] = {}
        self._entries: Dict[Tuple[int, int], Span] = {}
        self._inflight: Dict[Tuple[int, int, str], List[Span]] = {}
        self._phases: List[Span] = []
        self._omu_limit = 4 * span_limit
        self.root: Optional[Span] = None
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine, span_limit: int = DEFAULT_SPAN_LIMIT) -> "Collector":
        """Wire a collector into ``machine``.

        Attach *before* spawning threads (thread contexts pick the
        probe up when spawned).  Shares the probe with an already (or
        later) attached :class:`repro.verify.CheckerSuite`; only one
        collector per machine.
        """
        from repro.verify.events import Probe

        if getattr(machine, "collector", None) is not None:
            raise ValueError("a collector is already attached to this machine")
        if machine.probe is None:
            probe = Probe(machine.sim)
            machine.probe = probe
            for sl in machine.msa_slices:
                sl.probe = probe
            machine.network.probe = probe
        collector = cls(machine, span_limit=span_limit)
        collector._subscribe(machine.probe)
        machine.collector = collector
        collector.root = collector._span("run", "run", machine.sim.now)
        return collector

    def _subscribe(self, probe) -> None:
        sub = probe.subscribe
        sub("lock_req", self._on_lock_req)
        sub("lock_acq", self._on_lock_acq)
        sub("lock_rel", self._on_lock_rel)
        for open_kind, (close_kind, name) in _PAIRS.items():
            sub(open_kind, self._make_opener(name))
            sub(close_kind, self._make_closer(name))
        sub("msa_alloc", self._on_msa_alloc)
        sub("msa_free", self._on_msa_free)
        sub("omu_inc", self._on_omu("inc"))
        sub("omu_dec", self._on_omu("dec"))
        sub("omu_steer", self._on_omu("steer"))
        sub("noc_send", self._on_noc_send)
        sub("noc_deliver", self._on_noc_deliver)
        sub("req_done", self._on_req_done)
        sub("req_shed", self._on_req_shed)

    # ------------------------------------------------------------------
    # Span bookkeeping
    # ------------------------------------------------------------------
    def _span(
        self, name, cat, start, tid=None, tile=None, parent=None, attrs=None
    ) -> Span:
        span = Span(
            sid=self._next_sid,
            name=name,
            cat=cat,
            start=start,
            tid=tid,
            tile=tile,
            parent=parent,
            attrs=attrs,
        )
        self._next_sid += 1
        return span

    def _retain(self, span: Span) -> None:
        count = self._counts.get(span.name, 0) + 1
        self._counts[span.name] = count
        if count <= self.span_limit:
            self.spans.append(span)
        else:
            self._dropped[span.name] = self._dropped.get(span.name, 0) + 1

    def _close(self, span: Span, now: int) -> None:
        span.close(now)
        hist = self._durations.get(span.name)
        if hist is None:
            hist = self._durations[span.name] = Histogram(
                span.name, sample_limit=4096
            )
        hist.add(span.duration)
        self._retain(span)

    def _parent_sid(self) -> Optional[int]:
        if self._phases:
            return self._phases[-1].sid
        return self.root.sid if self.root is not None else None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Open an explicit workload-phase span (nested phases nest)."""
        span = self._span(
            "phase",
            "phase",
            self.machine.sim.now,
            parent=self._parent_sid(),
            attrs={"label": name},
        )
        self._phases.append(span)
        try:
            yield span
        finally:
            self._phases.pop()
            self._close(span, self.machine.sim.now)

    # ------------------------------------------------------------------
    # Probe handlers
    # ------------------------------------------------------------------
    def _on_lock_req(self, e) -> None:
        self._open_sync[("lock.acquire", e.tid, e.addr)] = self._span(
            "lock.acquire",
            "sync",
            e.t,
            tid=e.tid,
            parent=self._parent_sid(),
            attrs={"addr": e.addr},
        )

    def _on_lock_acq(self, e) -> None:
        acquire = self._open_sync.pop(("lock.acquire", e.tid, e.addr), None)
        if acquire is not None:
            self._close(acquire, e.t)
        self._held[(e.tid, e.addr)] = self._span(
            "lock.held",
            "sync",
            e.t,
            tid=e.tid,
            parent=acquire.parent if acquire is not None else self._parent_sid(),
            attrs={"addr": e.addr},
        )

    def _on_lock_rel(self, e) -> None:
        held = self._held.pop((e.tid, e.addr), None)
        if held is not None:
            self._close(held, e.t)

    def _make_opener(self, name: str):
        def handler(e, _name=name):
            self._open_sync[(_name, e.tid, e.addr)] = self._span(
                _name,
                "sync",
                e.t,
                tid=e.tid,
                parent=self._parent_sid(),
                attrs={"addr": e.addr},
            )

        return handler

    def _make_closer(self, name: str):
        def handler(e, _name=name):
            span = self._open_sync.pop((_name, e.tid, e.addr), None)
            if span is not None:
                self._close(span, e.t)

        return handler

    def _on_msa_alloc(self, e) -> None:
        sync_type, live = e.aux if isinstance(e.aux, tuple) else (e.aux, None)
        self._entries[(e.tile, e.addr)] = self._span(
            "msa.entry",
            "msa",
            e.t,
            tile=e.tile,
            parent=self.root.sid if self.root is not None else None,
            attrs={"addr": e.addr, "type": sync_type, "live": live},
        )

    def _on_msa_free(self, e) -> None:
        span = self._entries.pop((e.tile, e.addr), None)
        if span is not None:
            span.attrs["reason"] = e.aux
            self._close(span, e.t)

    def _on_omu(self, event: str):
        def handler(e, _event=event):
            if len(self.omu_timeline) < self._omu_limit:
                amount = e.aux if isinstance(e.aux, int) else 1
                self.omu_timeline.append((e.t, e.tile, _event, amount))

        return handler

    def _on_noc_send(self, e) -> None:
        queue = self._inflight.setdefault((e.tid, e.tile, e.aux), [])
        queue.append(
            self._span(
                "noc.msg",
                "noc",
                e.t,
                tid=e.tid,
                tile=e.tile,
                parent=self.root.sid if self.root is not None else None,
                attrs={"kind": e.aux},
            )
        )

    def _on_noc_deliver(self, e) -> None:
        kind = e.aux[0] if isinstance(e.aux, tuple) else e.aux
        queue = self._inflight.get((e.tid, e.tile, kind))
        if queue:
            # Same (src, dst, kind) messages take the same route, and
            # links are FIFO, so first-sent is first-delivered.  Fault
            # plans (drops/dups) can desynchronize the match; leftovers
            # are discarded at finalize, never mis-closed backwards.
            self._close(queue.pop(0), e.t)

    def _request_span(self, e, shape, outcome) -> None:
        """Request lifetimes arrive as single terminal events carrying
        their own start cycle (the scheduled arrival), so the span is
        born already closed; its duration is the *sojourn* time."""
        arrival = e.aux[0]
        span = self._span(
            f"request.{outcome}",
            "traffic",
            arrival,
            tid=e.tid,
            parent=self.root.sid if self.root is not None else None,
            attrs={"rid": e.addr, "shape": shape},
        )
        self._close(span, e.t)

    def _on_req_done(self, e) -> None:
        self._request_span(e, shape=e.aux[1], outcome=e.aux[2])

    def _on_req_shed(self, e) -> None:
        self._request_span(e, shape=e.aux[1], outcome="shed")

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def finalize(self) -> ObsResult:
        """Close the run span, drop still-open episode state, and build
        the unified registry (machine stats + span aggregates)."""
        if self._finalized:
            raise ValueError("collector already finalized")
        self._finalized = True
        now = self.machine.sim.now
        while self._phases:
            self._close(self._phases.pop(), now)
        for span in self._open_sync.values():
            span.attrs["unfinished"] = True
            self._close(span, now)
        self._open_sync.clear()
        for span in list(self._held.values()) + list(self._entries.values()):
            span.attrs["unfinished"] = True
            self._close(span, now)
        self._held.clear()
        self._entries.clear()
        unmatched = sum(len(q) for q in self._inflight.values())
        self._inflight.clear()
        if self.root is not None:
            self._close(self.root, now)
        self.spans.sort(key=lambda s: (s.start, s.sid))

        registry = MetricsRegistry.from_machine(self.machine)
        for name, hist in sorted(self._durations.items()):
            registry.histogram(
                "obs.span.cycles", summarize_histogram(hist), span=name
            )
            registry.counter("obs.span.count", hist.count, span=name)
        for name, dropped in self._dropped.items():
            registry.counter("obs.span.dropped", dropped, span=name)
        if unmatched:
            registry.counter("obs.noc_unmatched_sends", unmatched)
        registry.gauge(
            "obs.events_observed", self.machine.probe.events_observed
        )
        return ObsResult(
            spans=self.spans,
            registry=registry,
            omu_timeline=self.omu_timeline,
            dropped_spans=dict(self._dropped),
        )
