"""Self-contained HTML run/sweep reports (``python -m repro report``).

Everything is inlined -- CSS and SVG charts, no external assets or
scripts -- so a report file can be attached to an issue or archived
with a sweep cache and still render anywhere.

Two entry points:

* :func:`render_run_report` -- one simulation: headline gauges, the
  per-primitive cycle attribution table, the OMU transition timeline,
  the NoC latency distribution, and the top counters.
* :func:`render_sweep_report` -- a grid of cached results: cycles and
  speedup per (workload, cores) x config, MSA coverage, checker
  verdicts, and aggregate sync/NoC activity.  Built purely from
  :class:`~repro.harness.runner.RunResult` data, so it renders straight
  from the result cache without re-simulating.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence, Tuple

_CSS = """
body { font: 14px/1.45 system-ui, -apple-system, sans-serif;
       margin: 2em auto; max-width: 72em; padding: 0 1em; color: #1a1a2e; }
h1 { font-size: 1.5em; border-bottom: 2px solid #3b4cca; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 1.8em; color: #3b4cca; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #ccd; padding: .3em .7em; text-align: right; }
th { background: #eef; }
td.l, th.l { text-align: left; }
td.best { background: #e7f7e7; font-weight: 600; }
td.bad { background: #fde8e8; }
.kpi { display: inline-block; margin: .4em 1.6em .4em 0; }
.kpi b { display: block; font-size: 1.4em; }
.bar { fill: #3b4cca; }
.note { color: #667; font-size: .92em; }
svg { overflow: visible; }
"""


def _esc(value) -> str:
    if isinstance(value, _SafeHtml):
        return str(value)
    return _html.escape(str(value))


def _page(title: str, body: List[str]) -> str:
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>\n"
        f"<body><h1>{_esc(title)}</h1>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def _table(
    headers: Sequence[str], rows: Sequence[Sequence], left_cols: int = 1
) -> str:
    head = "".join(
        f"<th class='l'>{_esc(h)}</th>" if i < left_cols else f"<th>{_esc(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            css = "l" if i < left_cols else ""
            if isinstance(cell, tuple):  # (text, extra-class)
                text, extra = cell
                css = (css + " " + extra).strip()
            else:
                text = cell
            cells.append(f"<td class='{css}'>{_esc(text)}</td>" if css else f"<td>{_esc(text)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        "<table><thead><tr>" + head + "</tr></thead><tbody>"
        + "".join(body) + "</tbody></table>"
    )


def _hbar(fraction: float, width: int = 120) -> str:
    w = max(0, min(width, int(round(fraction * width))))
    return (
        f"<svg width='{width}' height='10'>"
        f"<rect class='bar' width='{w}' height='10' rx='2'/></svg>"
    )


def _kpi(label: str, value: str) -> str:
    return f"<span class='kpi'><b>{_esc(value)}</b>{_esc(label)}</span>"


# ---------------------------------------------------------------------------
# Per-run report
# ---------------------------------------------------------------------------
def render_run_report(result, obs=None, title: Optional[str] = None) -> str:
    """Render one run (a :class:`RunResult`, optionally with the
    :class:`~repro.obs.collect.ObsResult` of an observed run) as a
    self-contained HTML page."""
    title = title or f"repro run report: {result.workload} on {result.config}"
    body: List[str] = ["<div>"]
    body.append(_kpi("cycles", f"{result.cycles:,}"))
    body.append(_kpi("cores", str(result.n_cores)))
    if result.msa_coverage is not None:
        body.append(_kpi("MSA coverage", f"{100 * result.msa_coverage:.1f}%"))
    sent = result.noc_counters.get("messages_sent", 0)
    if sent:
        body.append(_kpi("NoC messages", f"{sent:,}"))
    if result.check_report is not None:
        verdict = "ok" if result.check_report.get("ok") else "VIOLATIONS"
        body.append(_kpi("checkers", verdict))
    body.append("</div>")

    if obs is not None:
        body.append("<h2>Cycle attribution (spans)</h2>")
        attribution = obs.attribution()
        if attribution:
            total = sum(a["cycles"] for a in attribution.values()) or 1
            rows = []
            for name in sorted(
                attribution, key=lambda n: -attribution[n]["cycles"]
            ):
                a = attribution[name]
                rows.append(
                    [
                        name,
                        f"{int(a['count']):,}",
                        f"{int(a['cycles']):,}",
                        f"{a['mean']:.1f}",
                        f"{int(a['max']):,}",
                        _SafeHtml(_hbar(a["cycles"] / total)),
                    ]
                )
            body.append(
                _table(
                    ("span", "count", "cycles", "mean", "max", "share"), rows
                )
            )
            body.append(
                "<p class='note'>Cycle sums overlap (a held lock spans the "
                "waits of its contenders); shares are of the summed span "
                "cycles, not of the run.</p>"
            )
        body.append(_omu_timeline_svg(obs.omu_timeline, result.cycles))
        if obs.dropped_spans:
            drops = ", ".join(
                f"{k}: {v:,}" for k, v in sorted(obs.dropped_spans.items())
            )
            body.append(
                f"<p class='note'>Span retention cap hit ({drops}); "
                "attribution above remains exact.</p>"
            )

    traffic = _traffic_run_html(result)
    if traffic:
        body.append("<h2>Request latency SLOs (open-loop traffic)</h2>")
        body.append(traffic)

    body.append("<h2>NoC latency</h2>")
    body.append(_noc_latency_html(result, obs))

    body.append("<h2>Top counters</h2>")
    merged: Dict[str, float] = {}
    for prefix, counters in (
        ("msa.", result.msa_counters),
        ("sync.", result.sync_unit_counters),
        ("noc.", result.noc_counters),
        ("fault.", result.fault_counters),
    ):
        for name, value in counters.items():
            if value:
                merged[prefix + name] = merged.get(prefix + name, 0) + value
    rows = [
        [name, f"{int(value):,}"]
        for name, value in sorted(merged.items(), key=lambda kv: -kv[1])[:40]
    ]
    body.append(_table(("counter", "value"), rows))
    return _page(title, body)


class _SafeHtml(str):
    """Marker so _table leaves pre-rendered HTML (SVG bars) unescaped."""


def _noc_latency_html(result, obs) -> str:
    if obs is not None:
        metric = None
        for m in obs.registry.metrics():
            if m.name == "noc.latency" and m.kind == "histogram":
                metric = m
                break
        if metric is not None and metric.summary and metric.summary["count"]:
            s = metric.summary
            return _table(
                ("messages", "mean", "p50", "p90", "p99", "max"),
                [[
                    f"{int(s['count']):,}",
                    f"{s['sum'] / s['count']:.1f}",
                    f"{s['p50']:.0f}",
                    f"{s['p90']:.0f}",
                    f"{s['p99']:.0f}",
                    f"{int(s['max']):,}",
                ]],
                left_cols=0,
            )
    count = result.noc_counters.get("latency.count")
    mean = result.noc_counters.get("latency.mean")
    if count:
        return _table(
            ("messages", "mean latency"),
            [[f"{int(count):,}", f"{mean:.1f}" if mean else "-"]],
            left_cols=0,
        )
    return "<p class='note'>No NoC latency distribution in this result.</p>"


def _traffic_run_html(result) -> str:
    """SLO table for one open-loop traffic run; '' for other workloads."""
    m = getattr(result, "workload_metrics", None) or {}
    if "traffic.p99" not in m:
        return ""
    offered = int(m.get("traffic.offered", 0))
    parts = [
        _kpi("p50 sojourn", f"{m['traffic.p50']:,.0f} cy"),
        _kpi("p99", f"{m['traffic.p99']:,.0f} cy"),
        _kpi("p999", f"{m['traffic.p999']:,.0f} cy"),
        _kpi("goodput", f"{m.get('traffic.goodput_rpk', 0):.2f} req/kcy"),
    ]
    rows = [
        [
            f"{offered:,}",
            f"{m.get('traffic.offered_rpk', 0):.2f}",
            f"{int(m.get('traffic.done', 0)):,}",
            (
                f"{int(m.get('traffic.shed', 0)):,}",
                "bad" if m.get("traffic.shed") else "",
            ),
            (
                f"{int(m.get('traffic.timeout', 0)):,}",
                "bad" if m.get("traffic.timeout") else "",
            ),
            f"{m.get('traffic.mean', 0):,.0f}",
        ]
    ]
    table = _table(
        ("offered", "offered rate", "done", "shed", "timeout", "mean sojourn"),
        rows,
        left_cols=0,
    )
    note = (
        "<p class='note'>Sojourn = completion minus scheduled arrival "
        "(queueing included); rates in requests per kilocycle. "
        "Shed = dropped at admission, timeout = queueing delay exceeded "
        "the deadline (see docs/TRAFFIC.md).</p>"
    )
    return "<div>" + "".join(parts) + "</div>" + table + note


#: Per-config line colors for the load-latency chart (cycled).
_CURVE_COLORS = ("#3b4cca", "#cc3b3b", "#2e8b57", "#b8860b", "#8b3bcc", "#666")


def _traffic_sweep_html(points) -> str:
    """Load-vs-p99 section for sweeps containing traffic points."""
    traffic_points = [
        p
        for p in points
        if "traffic.p99" in (p.result.workload_metrics or {})
    ]
    if not traffic_points:
        return ""
    configs = sorted({p.config for p in traffic_points})
    loads = sorted({p.scale for p in traffic_points})
    by_key = {(p.config, p.scale): p for p in traffic_points}

    def metric(p, key):
        return (p.result.workload_metrics or {}).get(key)

    rows = []
    for load in loads:
        row: List = [f"x{load:g}"]
        for config in configs:
            p = by_key.get((config, load))
            if p is None:
                row.append("-")
                continue
            p99 = metric(p, "traffic.p99") or 0
            goodput = metric(p, "traffic.goodput_rpk") or 0
            shed = int(metric(p, "traffic.shed") or 0)
            timeout = int(metric(p, "traffic.timeout") or 0)
            text = f"{p99:,.0f} cy / {goodput:.2f} rpk"
            row.append((text, "bad") if (shed or timeout) else text)
        rows.append(row)
    table = _table(["offered load"] + configs, rows)

    series = []
    for i, config in enumerate(configs):
        pts = [
            (load, metric(by_key[(config, load)], "traffic.p99") or 0.0)
            for load in loads
            if (config, load) in by_key
        ]
        if pts:
            series.append((config, _CURVE_COLORS[i % len(_CURVE_COLORS)], pts))
    svg = _load_curve_svg(series)
    note = (
        "<p class='note'>Cells: p99 sojourn latency / goodput "
        "(requests per kilocycle); red = the point shed or timed out "
        "requests.  Offered load is the arrival-rate multiplier "
        "(JobSpec scale).</p>"
    )
    return table + note + svg


def _load_curve_svg(series) -> str:
    """Inline SVG: one p99-vs-offered-load polyline per config."""
    if not series:
        return ""
    width, height, pad = 560, 220, 40
    xs = sorted({x for _, _, pts in series for x, _ in pts})
    y_max = max(y for _, _, pts in series for _, y in pts) or 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    def sx(x):
        return round(pad + (x - x_min) / x_span * (width - 2 * pad), 1)

    def sy(y):
        return round(height - pad - y / y_max * (height - 2 * pad), 1)

    parts = [
        f"<rect x='{pad}' y='{pad}' width='{width - 2 * pad}' "
        f"height='{height - 2 * pad}' fill='none' stroke='#ccd'/>"
    ]
    for x in xs:
        parts.append(
            f"<text x='{sx(x)}' y='{height - pad + 14}' font-size='10' "
            f"text-anchor='middle'>x{x:g}</text>"
        )
    for frac in (0.0, 0.5, 1.0):
        y_val = frac * y_max
        parts.append(
            f"<text x='{pad - 6}' y='{sy(y_val) + 3}' font-size='10' "
            f"text-anchor='end'>{y_val:,.0f}</text>"
        )
    legend_y = pad
    for config, color, pts in series:
        path = " ".join(f"{sx(x)},{sy(y)}" for x, y in sorted(pts))
        parts.append(
            f"<polyline points='{path}' fill='none' stroke='{color}' "
            f"stroke-width='2'/>"
        )
        for x, y in pts:
            parts.append(
                f"<circle cx='{sx(x)}' cy='{sy(y)}' r='2.5' fill='{color}'/>"
            )
        parts.append(
            f"<rect x='{width - pad + 6}' y='{legend_y}' width='10' "
            f"height='10' fill='{color}'/>"
            f"<text x='{width - pad + 20}' y='{legend_y + 9}' "
            f"font-size='11'>{_esc(config)}</text>"
        )
        legend_y += 16
    return (
        f"<svg width='{width + 120}' height='{height + 6}'>"
        + "".join(parts)
        + f"</svg><p class='note'>p99 sojourn latency (cycles) vs offered "
        f"load, one line per configuration.</p>"
    )


def _omu_timeline_svg(
    timeline: List[Tuple[int, int, str, int]], cycles: int
) -> str:
    """An inline SVG strip chart of OMU activity: one row per tile,
    charge (inc) / discharge (dec) ticks and software-steer marks over
    simulated time."""
    if not timeline:
        return (
            "<h2>OMU transitions</h2><p class='note'>No OMU activity "
            "observed (no overflow pressure, or OMU disabled).</p>"
        )
    tiles = sorted({t for _, t, _, _ in timeline})
    width, row_h = 720, 14
    height = row_h * len(tiles)
    span = max(cycles, max(c for c, _, _, _ in timeline), 1)
    colors = {"inc": "#3b4cca", "dec": "#9bb0e8", "steer": "#cc3b3b"}
    marks = []
    for cycle, tile, event, _amount in timeline:
        x = round(cycle / span * width, 1)
        y = tiles.index(tile) * row_h
        marks.append(
            f"<rect x='{x}' y='{y + 2}' width='2' height='{row_h - 4}' "
            f"fill='{colors.get(event, '#888')}'/>"
        )
    labels = "".join(
        f"<text x='-6' y='{tiles.index(t) * row_h + row_h - 3}' "
        f"text-anchor='end' font-size='9'>tile {t}</text>"
        for t in tiles
    )
    counts: Dict[str, int] = {}
    for _, _, event, _a in timeline:
        counts[event] = counts.get(event, 0) + 1
    legend = ", ".join(
        f"{event}: {count:,}" for event, count in sorted(counts.items())
    )
    return (
        "<h2>OMU transitions</h2>"
        f"<svg width='{width + 60}' height='{height + 4}' "
        f"viewBox='-60 0 {width + 60} {height + 4}'>"
        f"{labels}{''.join(marks)}</svg>"
        f"<p class='note'>blue = charge (inc), light = discharge (dec), "
        f"red = steered to software; x = cycle 0..{span:,}. {legend}.</p>"
    )


# ---------------------------------------------------------------------------
# DSE section (Pareto scatter + heatmap)
# ---------------------------------------------------------------------------
def _pareto_scatter_svg(records) -> str:
    """Inline SVG: hardware cost (x) vs speedup (y) for the full-scale
    designs; Pareto-front members highlighted red and labeled."""
    finals = [r for r in records if r.final]
    if not finals:
        return ""
    width, height, pad = 560, 260, 46
    x_min = min(r.cost for r in finals)
    x_max = max(r.cost for r in finals)
    y_min = min(r.speedup for r in finals)
    y_max = max(r.speedup for r in finals)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def sx(x):
        return round(pad + (x - x_min) / x_span * (width - 2 * pad), 1)

    def sy(y):
        return round(height - pad - (y - y_min) / y_span * (height - 2 * pad), 1)

    parts = [
        f"<rect x='{pad}' y='{pad - 14}' width='{width - 2 * pad}' "
        f"height='{height - 2 * pad + 14}' fill='none' stroke='#ccd'/>"
    ]
    for frac in (0.0, 0.5, 1.0):
        x_val = x_min + frac * x_span
        y_val = y_min + frac * y_span
        parts.append(
            f"<text x='{sx(x_val)}' y='{height - pad + 14}' font-size='10' "
            f"text-anchor='middle'>{x_val:,.0f}</text>"
        )
        parts.append(
            f"<text x='{pad - 6}' y='{sy(y_val) + 3}' font-size='10' "
            f"text-anchor='end'>{y_val:.2f}</text>"
        )
    parts.append(
        f"<text x='{width / 2}' y='{height - 6}' font-size='11' "
        f"text-anchor='middle'>hardware cost (storage bits)</text>"
    )
    parts.append(
        f"<text x='12' y='{height / 2}' font-size='11' text-anchor='middle' "
        f"transform='rotate(-90 12 {height / 2})'>speedup (geomean)</text>"
    )
    front = sorted(
        (r for r in finals if r.pareto), key=lambda r: r.cost
    )
    if len(front) > 1:
        path = " ".join(f"{sx(r.cost)},{sy(r.speedup)}" for r in front)
        parts.append(
            f"<polyline points='{path}' fill='none' stroke='#cc3b3b' "
            f"stroke-width='1' stroke-dasharray='4 3'/>"
        )
    for r in finals:
        if r.pareto:
            continue
        parts.append(
            f"<circle cx='{sx(r.cost)}' cy='{sy(r.speedup)}' r='4' "
            f"fill='#3b4cca' opacity='0.55'><title>{_esc(r.label())}: "
            f"speedup {r.speedup:.3f}, cost {r.cost:,.0f}</title></circle>"
        )
    for r in front:
        parts.append(
            f"<circle cx='{sx(r.cost)}' cy='{sy(r.speedup)}' r='5' "
            f"fill='#cc3b3b'><title>{_esc(r.label())}: speedup "
            f"{r.speedup:.3f}, cost {r.cost:,.0f}</title></circle>"
        )
        parts.append(
            f"<text x='{sx(r.cost) + 7}' y='{sy(r.speedup) - 6}' "
            f"font-size='9'>{_esc(r.label())}</text>"
        )
    return (
        f"<svg width='{width}' height='{height}'>" + "".join(parts)
        + "</svg><p class='note'>Full-scale designs; red = Pareto front "
        "(no other design is faster *and* cheaper; chaos objective "
        "included in dominance when present). Hover points for the "
        "axis values.</p>"
    )


def _dse_heatmap_html(result) -> str:
    """Speedup heatmap over the first two axes (cells take the best
    speedup across any remaining axes; single-axis spaces get a bar
    table instead)."""
    axes = list(result.space.axes)
    finals = [r for r in result.records if r.final]
    if not finals:
        return ""
    max_speedup = max(r.speedup for r in finals) or 1.0
    if len(axes) == 1:
        name, values = axes[0]
        rows = []
        for value in values:
            rs = [r for r in finals if r.design.get(name) == value]
            if not rs:
                rows.append([str(value), "-", ""])
                continue
            best = max(r.speedup for r in rs)
            rows.append(
                [
                    str(value),
                    f"{best:.3f}",
                    _SafeHtml(_hbar(best / max_speedup)),
                ]
            )
        return _table((name, "speedup", ""), rows)
    (x_name, x_values), (y_name, y_values) = axes[0], axes[1]
    rows = []
    for y in y_values:
        row: List = [f"{y_name}={y}"]
        for x in x_values:
            rs = [
                r
                for r in finals
                if r.design.get(x_name) == x and r.design.get(y_name) == y
            ]
            if not rs:
                row.append("-")
                continue
            best = max(rs, key=lambda r: r.speedup)
            # Green intensity scales with speedup; Pareto cells bold via
            # the existing .best class.
            row.append(
                (f"{best.speedup:.3f}", "best")
                if best.pareto
                else f"{best.speedup:.3f}"
            )
        rows.append(row)
    table = _table([""] + [f"{x_name}={x}" for x in x_values], rows)
    extra = ""
    if len(axes) > 2:
        others = ", ".join(name for name, _ in axes[2:])
        extra = (
            f"<p class='note'>Cells take the best speedup across the "
            f"remaining axes ({_esc(others)}).</p>"
        )
    return table + extra


def _dse_section_html(dse_results) -> str:
    """One sub-section per DSE document: KPIs, Pareto scatter, heatmap,
    and the front as a table."""
    parts: List[str] = []
    for result in dse_results:
        space = result.space
        finals = [r for r in result.records if r.final]
        parts.append(f"<h2>Design space: {_esc(space.describe())}</h2>")
        parts.append("<div>")
        parts.append(_kpi("strategy", result.strategy))
        parts.append(_kpi("designs", str(len(result.records))))
        parts.append(_kpi("full scale", str(len(finals))))
        parts.append(_kpi("pareto", str(len(result.pareto_records))))
        if result.chaos_rate:
            parts.append(_kpi("chaos rate", f"{result.chaos_rate:g}"))
        parts.append("</div>")
        parts.append(_pareto_scatter_svg(result.records))
        heatmap = _dse_heatmap_html(result)
        if heatmap:
            parts.append("<h3>Speedup heatmap</h3>")
            parts.append(heatmap)
        front = sorted(result.pareto_records, key=lambda r: -r.speedup)
        if front:
            rows = []
            for r in front:
                chaos = f"{r.chaos:.3f}" if r.chaos is not None else "-"
                rows.append(
                    [
                        r.label(),
                        f"{r.speedup:.3f}",
                        f"{r.cost:,.0f}",
                        f"{r.cost_breakdown.get('msa_bits', 0):,.0f}",
                        f"{r.cost_breakdown.get('omu_bits', 0):,.0f}",
                        chaos,
                    ]
                )
            parts.append("<h3>Pareto front</h3>")
            parts.append(
                _table(
                    (
                        "design",
                        "speedup",
                        "cost (bits)",
                        "MSA bits",
                        "OMU bits",
                        "chaos",
                    ),
                    rows,
                )
            )
    return "".join(parts)


# ---------------------------------------------------------------------------
# Cross-sweep report
# ---------------------------------------------------------------------------
def render_sweep_report(
    points,
    baseline: Optional[str] = None,
    title: str = "repro sweep report",
    bench_doc: Optional[Dict] = None,
    resilience: Optional[Dict[str, int]] = None,
    dse_results: Optional[Sequence] = None,
) -> str:
    """Render a list of :class:`~repro.harness.sweep.SweepPoint` (e.g.
    loaded from the result cache) as a self-contained HTML page.

    With ``baseline`` (a config name present in the points), each cell
    also shows the speedup over the same (workload, cores) baseline
    run.  ``bench_doc`` optionally appends a simulator-performance
    section from a ``repro.perf`` benchmark document; ``resilience``
    (the job store's lifetime counters -- leases, retries, quarantines)
    appends the harness-resilience section; ``dse_results`` (loaded
    :class:`repro.dse.DseResult` documents) appends one design-space
    section each -- Pareto scatter, speedup heatmap, and the front.
    """
    points = list(points)
    configs = sorted({p.config for p in points})
    groups = sorted({(p.workload, p.n_cores) for p in points})
    by_key = {(p.workload, p.n_cores, p.config): p for p in points}

    body: List[str] = ["<div>"]
    body.append(_kpi("points", str(len(points))))
    body.append(_kpi("configs", str(len(configs))))
    body.append(_kpi("workload grids", str(len(groups))))
    checked = sum(1 for p in points if p.result.check_report is not None)
    if checked:
        bad = sum(
            1
            for p in points
            if p.result.check_report is not None
            and not p.result.check_report.get("ok")
        )
        body.append(_kpi("checked", f"{checked} ({bad} failed)"))
    body.append("</div>")

    body.append("<h2>Cycles" + (f" and speedup over {_esc(baseline)}" if baseline else "") + "</h2>")
    rows = []
    for workload, cores in groups:
        row: List = [f"{workload} @{cores}"]
        base = by_key.get((workload, cores, baseline)) if baseline else None
        best_config, best_cycles = None, None
        for config in configs:
            p = by_key.get((workload, cores, config))
            if p is not None and (best_cycles is None or p.result.cycles < best_cycles):
                best_config, best_cycles = config, p.result.cycles
        for config in configs:
            p = by_key.get((workload, cores, config))
            if p is None:
                row.append("-")
                continue
            text = f"{p.result.cycles:,}"
            if base is not None and base.result.cycles and p.result.cycles:
                text += f" ({base.result.cycles / p.result.cycles:.2f}x)"
            row.append((text, "best") if config == best_config else text)
        rows.append(row)
    body.append(_table(["workload @cores"] + configs, rows))

    traffic = _traffic_sweep_html(points)
    if traffic:
        body.append("<h2>Tail latency under offered load (repro.traffic)</h2>")
        body.append(traffic)

    if dse_results:
        body.append(_dse_section_html(dse_results))

    body.append("<h2>MSA coverage</h2>")
    cov_configs = [
        c
        for c in configs
        if any(
            by_key.get((w, n, c)) is not None
            and by_key[(w, n, c)].result.msa_coverage is not None
            for w, n in groups
        )
    ]
    if cov_configs:
        rows = []
        for workload, cores in groups:
            row: List = [f"{workload} @{cores}"]
            for config in cov_configs:
                p = by_key.get((workload, cores, config))
                coverage = p.result.msa_coverage if p is not None else None
                if coverage is None:
                    row.append("-")
                else:
                    row.append((f"{100 * coverage:.1f}%", "bad" if coverage < 0.5 else ""))
            rows.append(row)
        body.append(_table(["workload @cores"] + cov_configs, rows))
    else:
        body.append("<p class='note'>No MSA configurations in this sweep.</p>")

    body.append("<h2>Sync and NoC activity (per config, summed)</h2>")
    agg_rows = []
    for config in configs:
        totals: Dict[str, int] = {}
        for p in points:
            if p.config != config:
                continue
            for key in (
                "entries_allocated",
                "omu_steered_sw",
                "omu_saturations",
                "ops_aborted",
            ):
                totals[key] = totals.get(key, 0) + p.result.msa_counters.get(key, 0)
            totals["noc_sent"] = totals.get("noc_sent", 0) + p.result.noc_counters.get(
                "messages_sent", 0
            )
        agg_rows.append(
            [
                config,
                f"{totals.get('noc_sent', 0):,}",
                f"{totals.get('entries_allocated', 0):,}",
                f"{totals.get('omu_steered_sw', 0):,}",
                f"{totals.get('omu_saturations', 0):,}",
                f"{totals.get('ops_aborted', 0):,}",
            ]
        )
    body.append(
        _table(
            (
                "config",
                "NoC msgs",
                "MSA entries",
                "OMU steers",
                "OMU saturations",
                "ABORTs",
            ),
            agg_rows,
        )
    )

    if resilience:
        body.append("<h2>Harness resilience (job store)</h2>")
        highlight = {"quarantined", "stale_completions", "leases_expired"}
        rows = [
            [name, (f"{value:,}", "bad") if name in highlight and value else f"{value:,}"]
            for name, value in sorted(resilience.items())
            if value
        ]
        if rows:
            body.append(_table(("counter", "value"), rows))
        else:
            body.append(
                "<p class='note'>Store present, all counters zero.</p>"
            )
        body.append(
            "<p class='note'>Lifetime counters of the durable job store "
            "next to this cache: lease grants/expiries track worker "
            "supervision, retries/quarantines track failing points "
            "(see docs/HARNESS.md).</p>"
        )

    if bench_doc is not None:
        body.append("<h2>Simulator performance (repro.perf)</h2>")
        rows = [
            [
                p["key"],
                f"{p['events']:,}",
                f"{p['wall_s']:.3f}s",
                f"{p['events_per_sec']:,.0f}",
            ]
            for p in bench_doc.get("points", ())
        ]
        body.append(_table(("point", "events", "wall", "events/sec"), rows))
        body.append(
            f"<p class='note'>calibration "
            f"{bench_doc.get('calibration_kops', 0):,.0f} kops/s on "
            f"{_esc(bench_doc.get('platform', '?'))}</p>"
        )

    return _page(title, body)
