"""Report-from-cache: render HTML reports from finished sweeps.

The experiment engine (:mod:`repro.harness.jobs`) leaves every finished
run in its content-addressed result cache.  This module turns that
cache back into sweep points and renders the cross-sweep HTML report --
**without re-simulating anything**: ``python -m repro report`` on a
warm cache is pure deserialization plus string formatting.

>>> from repro.obs.report import load_cache_points
>>> list(load_cache_points("/nonexistent"))
[]
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.harness.jobs import ResultCache
from repro.harness.sweep import SweepPoint, add_speedups
from repro.obs.html import render_sweep_report


def load_cache_points(cache_dir) -> List[SweepPoint]:
    """Load every readable entry of a result cache as
    :class:`~repro.harness.sweep.SweepPoint` rows (key-sorted,
    deterministic order).  Missing or empty caches yield ``[]``."""
    points: List[SweepPoint] = []
    for spec, result in ResultCache(cache_dir).entries():
        points.append(
            SweepPoint(
                config=spec.get("config", result.config),
                workload=spec.get("workload", result.workload),
                n_cores=int(spec.get("cores", result.n_cores)),
                scale=float(spec.get("scale", 1.0)),
                result=result,
            )
        )
    return points


def load_store_counters(cache_dir) -> Optional[dict]:
    """Lifetime resilience counters of the job store living next to a
    result cache (``<cache_dir>/jobs.sqlite3``): leases granted and
    reclaimed, retries, quarantines, stale completions.  ``None`` when
    the cache has no store (a pre-resilience or serial-only sweep)."""
    from repro.resilience import JobStore, default_store_path

    path = default_store_path(cache_dir)
    if not path.is_file():
        return None
    try:
        store = JobStore(path)
        try:
            return store.counters()
        finally:
            store.close()
    except Exception:
        return None


def load_dse_documents(cache_dir) -> List:
    """Load every readable DSE document under ``<cache_dir>/dse/``
    (:class:`repro.dse.DseResult`, path-sorted).  Corrupt or
    incompatible documents are skipped with a warning -- the report
    renders what it can, same contract as corrupt cache entries."""
    import warnings

    from repro.dse import DseResult

    dse_dir = Path(cache_dir) / "dse"
    if not dse_dir.is_dir():
        return []
    results = []
    for path in sorted(dse_dir.glob("*.json")):
        try:
            results.append(DseResult.load(path))
        except Exception as exc:
            warnings.warn(
                f"skipping unreadable DSE document {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return results


def report_from_cache(
    cache_dir,
    out,
    baseline: Optional[str] = None,
    title: Optional[str] = None,
    bench_doc: Optional[dict] = None,
) -> Path:
    """Render the cross-sweep HTML report for a result cache.

    ``cache_dir`` is the engine's cache root (``REPRO_CACHE_DIR`` /
    ``--cache``); ``out`` the HTML file to write.  With ``baseline`` (a
    config name present in the cache, e.g. ``pthread``), speedup
    columns are added.  DSE documents under ``<cache_dir>/dse/`` render
    as Pareto-scatter/heatmap sections.  Raises :class:`ConfigError` on
    an empty cache -- a report of nothing is a usage error, not a blank
    page.
    """
    points = load_cache_points(cache_dir)
    if not points:
        raise ConfigError(
            f"no cached results under {str(cache_dir)!r}; run a sweep "
            "first (e.g. `python -m repro sweep --cache-dir DIR ...`)"
        )
    if baseline is not None:
        if not any(p.config == baseline for p in points):
            raise ConfigError(
                f"baseline config {baseline!r} not in cache; have "
                f"{sorted({p.config for p in points})}"
            )
        add_speedups(points, baseline)
    html = render_sweep_report(
        points,
        baseline=baseline,
        title=title or f"repro sweep report ({len(points)} cached points)",
        bench_doc=bench_doc,
        resilience=load_store_counters(cache_dir),
        dse_results=load_dse_documents(cache_dir),
    )
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html)
    return out
