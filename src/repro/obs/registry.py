"""The unified metric schema: one registry for every number a run emits.

Before this module, a run's numbers lived in four disconnected shapes:
``StatSet`` counters/histograms on each component, fault counters merged
by the machine, checker verdicts inside a ``CheckReport`` dict, and
``repro.perf`` benchmark documents.  :class:`MetricsRegistry` unifies
them behind one record type:

* **name** -- dotted metric name (``msa.entries_allocated``,
  ``noc.latency``, ``verify.violations``);
* **kind** -- ``counter`` (monotonic sum), ``gauge`` (point-in-time
  value), or ``histogram`` (distribution summary: count, sum, min, max,
  p50, p90, p99);
* **labels** -- string key/value dimensions (``config``, ``workload``,
  ``tile``, ``core``...), so the same metric from different runs or
  tiles aggregates cleanly.

Ingest from any source -- a live :class:`~repro.machine.Machine`
(:meth:`MetricsRegistry.from_machine`), a cached
:class:`~repro.harness.runner.RunResult`
(:meth:`MetricsRegistry.from_run_result`), a ``repro.perf`` benchmark
document (:meth:`MetricsRegistry.ingest_bench_doc`) -- then export as
JSONL (:meth:`to_jsonl`) or Prometheus text format
(:meth:`to_prometheus`).  The JSONL form round-trips losslessly:

>>> reg = MetricsRegistry()
>>> reg.counter("msa.ops_hw", 42, config="msa-omu-2", tile="3")
>>> reg.gauge("run.cycles", 1000, config="msa-omu-2")
>>> back = MetricsRegistry.from_jsonl(reg.to_jsonl())
>>> back.to_jsonl() == reg.to_jsonl()
True
>>> print(back.to_prometheus().splitlines()[0])
# TYPE repro_msa_ops_hw counter
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.stats import Histogram, StatSet

#: Metric kinds the registry accepts.
KINDS = ("counter", "gauge", "histogram")

#: Histogram summary statistics carried by a ``histogram`` metric.
SUMMARY_FIELDS = ("count", "sum", "min", "max", "p50", "p90", "p99")


@dataclass
class Metric:
    """One named, labelled measurement."""

    name: str
    kind: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0
    """Scalar for ``counter``/``gauge``; unused for histograms."""

    summary: Optional[Dict[str, float]] = None
    """:data:`SUMMARY_FIELDS` statistics; histograms only."""

    def key(self) -> Tuple:
        return (self.name, tuple(sorted(self.labels.items())))

    def to_dict(self) -> Dict:
        data = {"name": self.name, "kind": self.kind, "labels": self.labels}
        if self.kind == "histogram":
            data["summary"] = self.summary
        else:
            data["value"] = self.value
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Metric":
        return cls(
            name=data["name"],
            kind=data["kind"],
            labels=dict(data.get("labels", {})),
            value=data.get("value", 0.0),
            summary=data.get("summary"),
        )


def summarize_histogram(hist: Histogram) -> Dict[str, float]:
    """Collapse a :class:`~repro.common.stats.Histogram` into the
    registry's summary form (moments exact; percentiles over the
    retained samples)."""
    return {
        "count": hist.count,
        "sum": hist.total,
        "min": hist.minimum,
        "max": hist.maximum,
        "p50": hist.percentile(50),
        "p90": hist.percentile(90),
        "p99": hist.percentile(99),
    }


class MetricsRegistry:
    """A mergeable collection of :class:`Metric` records.

    Same-key counters sum, gauges overwrite, and histogram summaries
    merge conservatively (counts/sums add, min/max extend, percentiles
    take the larger -- exact percentile merging would need the samples).
    """

    def __init__(self):
        self._metrics: Dict[Tuple, Metric] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float, **labels) -> None:
        self._scalar("counter", name, value, labels, add=True)

    def gauge(self, name: str, value: float, **labels) -> None:
        self._scalar("gauge", name, value, labels, add=False)

    def histogram(self, name: str, summary: Dict[str, float], **labels) -> None:
        """Record a histogram from its summary dict (see
        :func:`summarize_histogram` for building one from a live
        :class:`~repro.common.stats.Histogram`)."""
        metric = Metric(
            name=name,
            kind="histogram",
            labels={k: str(v) for k, v in labels.items()},
            summary={f: float(summary.get(f, 0.0)) for f in SUMMARY_FIELDS},
        )
        seen = self._metrics.get(metric.key())
        if seen is None:
            self._metrics[metric.key()] = metric
        else:
            merged, new = seen.summary, metric.summary
            if not new["count"]:
                return
            if not merged["count"]:
                merged.update(new)
                return
            merged["count"] += new["count"]
            merged["sum"] += new["sum"]
            merged["min"] = min(merged["min"], new["min"])
            merged["max"] = max(merged["max"], new["max"])
            for p in ("p50", "p90", "p99"):
                merged[p] = max(merged[p], new[p])

    def _scalar(self, kind, name, value, labels, add) -> None:
        metric = Metric(
            name=name,
            kind=kind,
            labels={k: str(v) for k, v in labels.items()},
            value=float(value),
        )
        seen = self._metrics.get(metric.key())
        if seen is None:
            self._metrics[metric.key()] = metric
        elif add:
            seen.value += metric.value
        else:
            seen.value = metric.value

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_statset(self, stats: StatSet, prefix: str = "", **labels) -> None:
        """Ingest every counter and histogram of one StatSet."""
        for name, value in stats.counters.items():
            self.counter(prefix + name, value, **labels)
        for name, hist in stats.histograms.items():
            self.histogram(prefix + name, summarize_histogram(hist), **labels)

    def add_counters(self, counters: Dict[str, int], prefix: str = "", **labels) -> None:
        for name, value in counters.items():
            self.counter(prefix + name, value, **labels)

    @classmethod
    def from_machine(cls, machine, **labels) -> "MetricsRegistry":
        """Snapshot every StatSet a live machine owns (MSA slices, sync
        units, NoC, caches, directories, futex, fault plane), labelled
        by component tile/core, plus the run-level gauges."""
        reg = cls()
        for prefix, stats, set_labels in machine.stat_sets():
            merged = dict(labels)
            merged.update(set_labels)
            reg.add_statset(stats, prefix=prefix, **merged)
        if machine.fault_plan is not None:
            reg.add_counters(machine.fault_counters(), prefix="fault.", **labels)
        reg.gauge("run.cycles", machine.sim.now, **labels)
        reg.gauge("run.events", machine.sim.events_processed, **labels)
        coverage = machine.msa_coverage()
        if coverage is not None:
            reg.gauge("run.msa_coverage", coverage, **labels)
        return reg

    @classmethod
    def from_run_result(cls, result, **labels) -> "MetricsRegistry":
        """Ingest a (possibly cache-loaded) RunResult: the aggregated
        counter groups, workload metrics, fault counters, and -- when
        the run was checked -- the checker verdict as metrics."""
        reg = cls()
        labels = dict(labels)
        labels.setdefault("config", result.config)
        labels.setdefault("workload", result.workload)
        labels.setdefault("cores", str(result.n_cores))
        reg.gauge("run.cycles", result.cycles, **labels)
        if result.msa_coverage is not None:
            reg.gauge("run.msa_coverage", result.msa_coverage, **labels)
        reg.add_counters(result.msa_counters, prefix="msa.", **labels)
        reg.add_counters(result.sync_unit_counters, prefix="sync.", **labels)
        reg.add_counters(result.noc_counters, prefix="noc.", **labels)
        reg.add_counters(result.fault_counters, prefix="fault.", **labels)
        for name, value in result.workload_metrics.items():
            reg.gauge("workload." + name, value, **labels)
        report = result.check_report
        if report is not None:
            reg.gauge("verify.ok", 1.0 if report.get("ok") else 0.0, **labels)
            reg.gauge(
                "verify.violations", len(report.get("violations", [])), **labels
            )
            reg.gauge("verify.races", len(report.get("races", [])), **labels)
            reg.gauge(
                "verify.events_observed",
                report.get("events_observed", 0),
                **labels,
            )
        return reg

    def ingest_bench_doc(self, doc: Dict, **labels) -> None:
        """Ingest a ``repro.perf`` benchmark document (schema
        ``repro.perf/1``): per-point events/sec, wall time, and the
        determinism fingerprint as gauges."""
        for point in doc.get("points", ()):
            point_labels = dict(labels)
            point_labels.update(
                config=point["config"],
                workload=point["workload"],
                cores=str(point["cores"]),
            )
            self.gauge("bench.events_per_sec", point["events_per_sec"], **point_labels)
            self.gauge("bench.wall_s", point["wall_s"], **point_labels)
            self.gauge("bench.cycles", point["cycles"], **point_labels)
            self.gauge("bench.events", point["events"], **point_labels)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters sum, gauges overwrite,
        histogram summaries merge)."""
        for metric in other.metrics():
            if metric.kind == "histogram":
                self.histogram(metric.name, metric.summary, **metric.labels)
            elif metric.kind == "counter":
                self.counter(metric.name, metric.value, **metric.labels)
            else:
                self.gauge(metric.name, metric.value, **metric.labels)

    # ------------------------------------------------------------------
    # Access / export
    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """All metrics in deterministic (name, labels) order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels) -> Optional[Metric]:
        return self._metrics.get(
            (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        )

    def to_jsonl(self, path=None) -> str:
        """One JSON object per metric, sorted keys, deterministic order;
        writes to ``path`` when given and returns the text either way."""
        lines = [
            json.dumps(m.to_dict(), sort_keys=True) for m in self.metrics()
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    @classmethod
    def from_jsonl(cls, text: str) -> "MetricsRegistry":
        """Inverse of :meth:`to_jsonl`."""
        reg = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            metric = Metric.from_dict(json.loads(line))
            reg._metrics[metric.key()] = metric
        return reg

    def to_prometheus(self, path=None, prefix: str = "repro_") -> str:
        """Prometheus text exposition format.

        Counter/gauge metrics map directly; histogram summaries map to
        the ``summary`` type (``_count``/``_sum`` plus ``quantile``
        lines).  Names are sanitized to the Prometheus charset with the
        given ``prefix``.
        """
        by_name: Dict[str, List[Metric]] = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            prom = prefix + _sanitize(name)
            kind = group[0].kind
            lines.append(
                f"# TYPE {prom} "
                + {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[kind]
            )
            for metric in group:
                if kind == "histogram":
                    s = metric.summary or {}
                    for q, pf in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                        lines.append(
                            prom
                            + _label_str(metric.labels, quantile=q)
                            + f" {_fmt(s.get(pf, 0.0))}"
                        )
                    lines.append(
                        prom + "_count" + _label_str(metric.labels)
                        + f" {_fmt(s.get('count', 0.0))}"
                    )
                    lines.append(
                        prom + "_sum" + _label_str(metric.labels)
                        + f" {_fmt(s.get('sum', 0.0))}"
                    )
                else:
                    lines.append(
                        prom + _label_str(metric.labels) + f" {_fmt(metric.value)}"
                    )
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text


_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _SANITIZE_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, str], **extra) -> str:
    items = sorted(labels.items()) + sorted(extra.items())
    if not items:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label(str(v))}"' for k, v in items
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))
