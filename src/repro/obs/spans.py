"""The span model: hierarchical intervals over *simulated* time.

A :class:`Span` is one named interval of simulated cycles -- a lock
acquisition, a barrier episode, an MSA entry's hardware residency, a
NoC message in flight, a workload phase, or the whole run.  Spans form
a forest through ``parent`` references (span ids); the root of every
observed run is the ``run`` span the collector opens at attach time.

Canonical span names (``Span.name``), grouped by category
(``Span.cat``):

===========  =================  =======================================
category     name               interval
===========  =================  =======================================
run          run                collector attach .. finalize
phase        phase              an explicit ``collector.phase("...")``
sync         lock.acquire       ``lock_req`` .. ``lock_acq``
sync         lock.held          ``lock_acq`` .. ``lock_rel`` (includes
                                any ``cond_wait`` inside, which
                                releases the lock internally)
sync         barrier.wait       ``barrier_enter`` .. ``barrier_exit``
sync         cond.wait          ``cond_wait_begin`` .. ``cond_wait_end``
msa          msa.entry          ``msa_alloc`` .. ``msa_free``
noc          noc.msg            ``noc_send`` .. ``noc_deliver``
traffic      request.ok         scheduled arrival .. ``req_done``
                                (sojourn: queueing + service)
traffic      request.timeout    scheduled arrival .. deadline drop
traffic      request.shed       scheduled arrival .. ``req_shed``
===========  =================  =======================================

Spans serialize to plain dicts (:meth:`Span.to_dict` /
:meth:`Span.from_dict`) so they survive JSONL files and the exporters
in :mod:`repro.obs.export`.

>>> s = Span(sid=1, name="lock.acquire", cat="sync", start=10, end=42,
...          tid=3, attrs={"addr": 4096})
>>> s.duration
32
>>> Span.from_dict(s.to_dict()) == s
True
"""

from __future__ import annotations

from typing import Dict, Optional

#: Field order of the serialized form (kept stable for JSONL readers).
_FIELDS = ("sid", "name", "cat", "start", "end", "tid", "tile", "parent", "attrs")


class Span:
    """One named interval of simulated time.  ``end`` is ``None`` while
    the span is open; :meth:`close` sets it."""

    __slots__ = _FIELDS

    def __init__(
        self,
        sid: int,
        name: str,
        cat: str,
        start: int,
        end: Optional[int] = None,
        tid: Optional[int] = None,
        tile: Optional[int] = None,
        parent: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ):
        self.sid = sid
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.tid = tid
        self.tile = tile
        self.parent = parent
        self.attrs = attrs or {}

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> int:
        """Closed duration in cycles (0 while the span is still open)."""
        return 0 if self.end is None else self.end - self.start

    def close(self, now: int) -> "Span":
        self.end = now
        return self

    def to_dict(self) -> Dict:
        """JSON-ready dict (insertion order = :data:`_FIELDS` order)."""
        return {f: getattr(self, f) for f in _FIELDS}

    @classmethod
    def from_dict(cls, data: Dict) -> "Span":
        return cls(**{f: data.get(f) for f in _FIELDS})

    def __eq__(self, other) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in _FIELDS)

    def __repr__(self) -> str:
        span = f"{self.start}..{'open' if self.end is None else self.end}"
        who = f" tid={self.tid}" if self.tid is not None else ""
        where = f" tile={self.tile}" if self.tile is not None else ""
        return f"Span({self.sid} {self.name} [{span}]{who}{where})"
