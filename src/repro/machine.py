"""Machine assembly: one object owning the simulator, NoC, memory
hierarchy, MSA slices, sync units, scheduler, and runtime services.

Build one with :class:`MachineParams` plus a synchronization
configuration (which sync unit mode and which library), or more
conveniently through :func:`repro.harness.configs.build_machine`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.params import MachineParams
from repro.common.stats import merge_counters
from repro.mem.address import AddressAllocator
from repro.mem.memsys import MemoryFabric, MemorySystem
from repro.msa.ideal import IdealSyncOracle
from repro.msa.isa import MODE_ALWAYS_FAIL, MODE_HW, MODE_IDEAL, SyncUnit
from repro.msa.slice import MSASlice
from repro.noc.network import Network
from repro.runtime.futex import FutexService
from repro.runtime.scheduler import Scheduler
from repro.runtime.swsync.registry import SwStateRegistry
from repro.runtime.syncapi import make_library
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng


class Machine:
    """A fully wired simulated tiled many-core."""

    def __init__(self, params: MachineParams, library: str = "hybrid"):
        params.validate()
        self.params = params
        self.library_name = library
        self.sim = Simulator()
        from repro.sim.trace import Tracer

        self.tracer = Tracer(self.sim)
        self.rng = DeterministicRng(params.seed, "machine")
        self.network = Network(self.sim, params.n_cores, params.noc)
        self.memory = MemoryFabric(self.sim, self.network, params)
        self.allocator = AddressAllocator(self.memory.amap)
        self.futex = FutexService(self.sim)
        self.sw_state = SwStateRegistry(self.allocator)

        line_shift = params.l1.line_size.bit_length() - 1
        self.ideal_oracle: Optional[IdealSyncOracle] = None
        self.msa_slices: List[MSASlice] = []

        if params.ideal_sync:
            mode = MODE_IDEAL
            self.ideal_oracle = IdealSyncOracle(self.sim)
        elif params.msa is None:
            mode = MODE_ALWAYS_FAIL
        else:
            mode = MODE_HW
            self.msa_slices = [
                MSASlice(
                    self.sim,
                    self.network,
                    tile,
                    params.msa,
                    params.omu,
                    self.memory.amap.home_of,
                    line_shift,
                    tracer=self.tracer,
                    hw_threads=params.core.hw_threads,
                )
                for tile in range(params.n_cores)
            ]
        self.sync_mode = mode
        self.sync_units: List[SyncUnit] = [
            SyncUnit(
                self.sim,
                self.network,
                core,
                params.core,
                params.msa,
                self.memory.amap.home_of,
                mode=mode,
                ideal_oracle=self.ideal_oracle,
            )
            for core in range(params.n_cores)
        ]
        self.scheduler = Scheduler(self)
        self.sync_library = make_library(library, self)
        if library == "hybrid" and mode not in (
            MODE_HW,
            MODE_ALWAYS_FAIL,
            MODE_IDEAL,
        ):
            raise ConfigError(f"hybrid library incompatible with mode {mode}")

    # ------------------------------------------------------------------
    # Component accessors used by the runtime
    # ------------------------------------------------------------------
    def memory_system(self, core: int) -> MemorySystem:
        return self.memory.memory_system(core)

    def sync_unit(self, core: int) -> SyncUnit:
        return self.sync_units[core]

    def msa_slice(self, tile: int) -> MSASlice:
        return self.msa_slices[tile]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None, until: Optional[int] = None) -> int:
        """Drain the simulation; raises DeadlockError if threads hang."""
        cycles = self.sim.run(until=until, max_events=max_events)
        if until is None:
            self.scheduler.check_for_deadlock()
        return cycles

    def check_invariants(self) -> None:
        self.memory.check_invariants()
        for msa in self.msa_slices:
            msa.check_invariants()

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    def msa_counters(self) -> Dict[str, int]:
        return merge_counters(s.stats for s in self.msa_slices)

    def sync_unit_counters(self) -> Dict[str, int]:
        return merge_counters(u.stats for u in self.sync_units)

    def msa_coverage(self) -> Optional[float]:
        """Fraction of synchronization operations serviced in hardware
        (the paper's Figure 7 metric).  None when no MSA is present."""
        if not self.msa_slices:
            return None
        counters = self.msa_counters()
        hw = counters.get("ops_hw", 0)
        sw = counters.get("ops_sw", 0) + counters.get("ops_aborted", 0)
        total = hw + sw
        return hw / total if total else None

    def omu_totals(self) -> int:
        return sum(s.omu.total for s in self.msa_slices)
