"""Machine assembly: one object owning the simulator, NoC, memory
hierarchy, MSA slices, sync units, scheduler, and runtime services.

Build one with :class:`MachineParams` plus a synchronization
configuration (which sync unit mode and which library), or more
conveniently through :func:`repro.harness.configs.build_machine`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common import config as repro_config
from repro.common.errors import ConfigError
from repro.common.params import MachineParams
from repro.common.stats import merge_counters
from repro.faults import FaultInjector, FaultPlane, ReliableTransport
from repro.mem.address import AddressAllocator
from repro.mem.memsys import MemoryFabric, MemorySystem
from repro.msa.ideal import IdealSyncOracle
from repro.msa.isa import MODE_ALWAYS_FAIL, MODE_HW, MODE_IDEAL, SyncUnit
from repro.msa.slice import MSASlice
from repro.noc.network import Network
from repro.runtime.futex import FutexService
from repro.runtime.scheduler import Scheduler
from repro.runtime.swsync.registry import SwStateRegistry
from repro.runtime.syncapi import make_library
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.shard import ShardedSimulator, TileGroups, conservative_lookahead


def resolve_sim_mode(n_cores: int, override: Optional[str] = None) -> str:
    """Resolve the ``REPRO_SIM_SHARDING`` knob to a concrete kernel.

    ``auto`` picks the sharded calendar at 16+ cores: below that the
    same-cycle batch density (events per distinct timestamp) is too low
    for the calendar's bookkeeping to beat the legacy heap's small-n
    constant factor.  See docs/PERF.md ("When legacy mode is faster").
    """
    mode = repro_config.sim_sharding(override)
    if mode == "auto":
        return "sharded" if n_cores >= 16 else "legacy"
    return mode


class Machine:
    """A fully wired simulated tiled many-core."""

    def __init__(
        self,
        params: MachineParams,
        library: str = "hybrid",
        fault_plan=None,
        sim_mode: Optional[str] = None,
    ):
        params.validate()
        self.params = params
        self.library_name = library
        self.sim_mode = resolve_sim_mode(params.n_cores, sim_mode)
        if self.sim_mode == "sharded":
            groups = TileGroups.for_mesh(params.n_cores)
            self.sim = ShardedSimulator(
                groups, conservative_lookahead(params.noc, groups.n_groups)
            )
        else:
            self.sim = Simulator()
        from repro.sim.trace import Tracer

        self.tracer = Tracer(self.sim)
        self.probe = None
        """Checker event bus (:class:`repro.verify.events.Probe`);
        ``None`` until :meth:`attach_checkers` wires a suite in, so the
        un-checked hot path pays one attribute test per call site."""

        self.checker_suite = None
        self.collector = None
        """Observability collector (:class:`repro.obs.Collector`);
        ``None`` unless :meth:`repro.obs.Collector.attach` wired one in.
        Shares :attr:`probe` with the checker suite when both attach."""

        self.rng = DeterministicRng(params.seed, "machine")
        self.network = Network(self.sim, params.n_cores, params.noc)

        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        self.fault_plane: Optional[FaultPlane] = None
        self.transport: Optional[ReliableTransport] = None
        if fault_plan is not None:
            if params.ideal_sync or params.msa is None:
                raise ConfigError(
                    "fault plans target the MSA message protocol; build "
                    "the machine with an MSA (not ideal_sync/software-only)"
                )
            fault_plan.validate(n_tiles=params.n_cores)
            self.fault_injector = FaultInjector(
                self.sim, fault_plan, params.seed, self.tracer
            )
            self.fault_plane = FaultPlane(self.sim, self.tracer)
            self.transport = ReliableTransport(
                self.sim, self.network, params.faults, self.tracer
            )
            self.network.injector = self.fault_injector
            self.network.transport = self.transport

        self.memory = MemoryFabric(self.sim, self.network, params)
        self.allocator = AddressAllocator(self.memory.amap)
        self.futex = FutexService(self.sim)
        self.sw_state = SwStateRegistry(self.allocator)

        line_shift = params.l1.line_size.bit_length() - 1
        self.ideal_oracle: Optional[IdealSyncOracle] = None
        self.msa_slices: List[MSASlice] = []

        if params.ideal_sync:
            mode = MODE_IDEAL
            self.ideal_oracle = IdealSyncOracle(self.sim)
        elif params.msa is None:
            mode = MODE_ALWAYS_FAIL
        else:
            mode = MODE_HW
            self.msa_slices = [
                MSASlice(
                    self.sim,
                    self.network,
                    tile,
                    params.msa,
                    params.omu,
                    self.memory.amap.home_of,
                    line_shift,
                    tracer=self.tracer,
                    hw_threads=params.core.hw_threads,
                )
                for tile in range(params.n_cores)
            ]
        self.sync_mode = mode
        self.sync_units: List[SyncUnit] = [
            SyncUnit(
                self.sim,
                self.network,
                core,
                params.core,
                params.msa,
                self.memory.amap.home_of,
                mode=mode,
                ideal_oracle=self.ideal_oracle,
            )
            for core in range(params.n_cores)
        ]
        if self.fault_plane is not None:
            for sl in self.msa_slices:
                sl.arm_faults(self.fault_injector, self.fault_plane, params.faults)
            for unit in self.sync_units:
                unit.arm_faults(
                    self.fault_plane,
                    self.fault_injector,
                    params.faults,
                    self.tracer,
                )
            self.fault_plane.attach(self.sync_units, self.transport)
            for fault in self.fault_injector.kill_schedule():
                self.sim.schedule(
                    fault.at, lambda t=fault.tile: self.msa_slices[t].kill()
                )
        self.scheduler = Scheduler(self)
        self.sync_library = make_library(library, self)
        if library == "hybrid" and mode not in (
            MODE_HW,
            MODE_ALWAYS_FAIL,
            MODE_IDEAL,
        ):
            raise ConfigError(f"hybrid library incompatible with mode {mode}")

    # ------------------------------------------------------------------
    # Component accessors used by the runtime
    # ------------------------------------------------------------------
    def memory_system(self, core: int) -> MemorySystem:
        return self.memory.memory_system(core)

    def sync_unit(self, core: int) -> SyncUnit:
        return self.sync_units[core]

    def msa_slice(self, tile: int) -> MSASlice:
        return self.msa_slices[tile]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def attach_checkers(self, monitors=True, fail_fast: bool = False):
        """Attach a :class:`repro.verify.CheckerSuite` (all monitors by
        default) to this machine; see :func:`repro.verify.attach_checkers`."""
        from repro.verify import attach_checkers

        return attach_checkers(self, monitors, fail_fast=fail_fast)

    def run(self, max_events: Optional[int] = None, until: Optional[int] = None) -> int:
        """Drain the simulation; raises DeadlockError if threads hang."""
        cycles = self.sim.run(until=until, max_events=max_events)
        if until is None:
            self.scheduler.check_for_deadlock()
        return cycles

    def sharding_info(self) -> Dict[str, object]:
        """Scheduler-mode metadata + cross-group validation counters,
        stamped into ``repro.perf`` BENCH documents and surfaced by the
        watchdog's triage dump.  ``lookahead_violations`` must be 0 on
        every run: a nonzero count means a cross-group message beat the
        conservative horizon and the partition's independence claim is
        wrong (``tests/test_sharding.py`` asserts this)."""
        if isinstance(self.sim, ShardedSimulator):
            info = self.sim.sharding_info()
        else:
            info = {"mode": "legacy", "n_groups": 1, "lookahead": 0}
        info["cross_group_delivered"] = self.network.cross_group_delivered
        info["lookahead_violations"] = self.network.lookahead_violations
        return info

    def check_invariants(self) -> None:
        self.memory.check_invariants()
        for msa in self.msa_slices:
            if msa.dead:
                continue  # Fail-stop: its state is gone, not invariant.
            msa.check_invariants()

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    def stat_sets(self):
        """Yield ``(prefix, StatSet, labels)`` for every stats-bearing
        component: the NoC, each MSA slice and sync unit, the futex
        service, and (via :meth:`MemoryFabric.stat_sets`) each cache
        and directory.  This is the single enumeration the unified
        :class:`repro.obs.MetricsRegistry` ingests -- a new subsystem
        with a ``StatSet`` only needs a line here to appear in every
        exporter and report."""
        yield "noc.", self.network.stats, {}
        for sl in self.msa_slices:
            yield "msa.", sl.stats, {"tile": sl.tile}
        for core, unit in enumerate(self.sync_units):
            yield "sync.", unit.stats, {"core": core}
        yield "futex.", self.futex.stats, {}
        if self.ideal_oracle is not None:
            yield "ideal.", self.ideal_oracle.stats, {}
        for prefix, stats, labels in self.memory.stat_sets():
            yield prefix, stats, labels
        if self.fault_injector is not None:
            yield "fault.injector.", self.fault_injector.stats, {}
        if self.transport is not None:
            yield "fault.transport.", self.transport.stats, {}
        if self.fault_plane is not None:
            yield "fault.plane.", self.fault_plane.stats, {}

    def msa_counters(self) -> Dict[str, int]:
        return merge_counters(s.stats for s in self.msa_slices)

    def sync_unit_counters(self) -> Dict[str, int]:
        return merge_counters(u.stats for u in self.sync_units)

    def msa_coverage(self) -> Optional[float]:
        """Fraction of synchronization operations serviced in hardware
        (the paper's Figure 7 metric).  None when no MSA is present."""
        if not self.msa_slices:
            return None
        counters = self.msa_counters()
        hw = counters.get("ops_hw", 0)
        sw = counters.get("ops_sw", 0) + counters.get("ops_aborted", 0)
        total = hw + sw
        return hw / total if total else None

    def omu_totals(self) -> int:
        return sum(s.omu.total for s in self.msa_slices if not s.dead)

    # ------------------------------------------------------------------
    # Fault-plane introspection
    # ------------------------------------------------------------------
    def degraded_tiles(self) -> set:
        """Home tiles permanently routed to software by the fault plane."""
        if self.fault_plane is None:
            return set()
        return set(self.fault_plane.degraded)

    def msa_tile_coverage(self, tile: int) -> Optional[float]:
        """Hardware-coverage fraction for ops *homed* at one tile."""
        if not self.msa_slices:
            return None
        stats = self.msa_slices[tile].stats
        hw = stats.counter("ops_hw").value
        sw = stats.counter("ops_sw").value + stats.counter("ops_aborted").value
        total = hw + sw
        return hw / total if total else None

    def fault_counters(self) -> Dict[str, int]:
        """Merged injector + transport + plane + recovery counters."""
        sets = []
        if self.fault_injector is not None:
            sets.append(self.fault_injector.stats)
        if self.transport is not None:
            sets.append(self.transport.stats)
        if self.fault_plane is not None:
            sets.append(self.fault_plane.stats)
        merged = merge_counters(sets)
        for name in ("retries", "pings", "timeouts", "degraded_fails"):
            merged[name] = sum(
                u.stats.counter(name).value for u in self.sync_units
            )
        return merged
