"""Futex service: the kernel half of pthread-style blocking.

glibc's pthread mutexes, barriers, and condition variables block in the
kernel via futex(2); the wake path (syscall entry, runqueue work, IPI to
the target core) is what makes contended pthread synchronization slow
and poorly scaling -- exactly the baseline behaviour the paper measures.
We model that with flat syscall and per-thread wake costs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Generator, Tuple

from repro.common.stats import StatSet
from repro.common.types import Address
from repro.sim.kernel import Future, Simulator

#: Cycles to enter/exit the kernel for a futex call.
SYSCALL_LATENCY = 120
#: Additional cycles to make one sleeping thread runnable again
#: (runqueue manipulation + inter-processor interrupt).
WAKE_LATENCY = 180


class FutexService:
    """Machine-wide futex wait queues."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.stats = StatSet("futex")
        self._queues: Dict[Address, Deque[Future]] = {}

    def wait(self, th, addr: Address, expected: int) -> Generator:
        """``futex(FUTEX_WAIT)``: sleep while ``*addr == expected``.

        Returns immediately (EAGAIN-style) when the value already
        changed; otherwise parks the thread until a wake.  Used with
        ``yield from`` from thread bodies.
        """
        self.stats.counter("waits").inc()
        yield SYSCALL_LATENCY
        while True:
            epoch = th.thread.resume_count
            value = yield from th.load(addr)
            if th.thread.resume_count != epoch:
                # A context switch interleaved with the check: the value
                # is stale (wakes may have passed while we were off the
                # core).  A real kernel's check-and-enqueue is atomic
                # under the futex bucket lock; re-read before deciding.
                self.stats.counter("check_retries").inc()
                continue
            break
        if value != expected:
            self.stats.counter("eagain").inc()
            return False
        # No yields between the verified read and the enqueue: the
        # check-and-sleep is atomic within this simulation event.
        parked = self.sim.future()
        self._queues.setdefault(addr, deque()).append(parked)
        yield parked
        yield SYSCALL_LATENCY  # kernel exit on the woken side
        yield from th._absorb_suspension()
        return True

    def wake(self, th, addr: Address, count: int) -> Generator:
        """``futex(FUTEX_WAKE)``: make up to ``count`` sleepers runnable.

        The waker pays the syscall; each woken thread becomes runnable
        after a per-thread wake cost (serialized, like a runqueue walk).
        Returns the number of threads woken.
        """
        self.stats.counter("wakes").inc()
        yield SYSCALL_LATENCY
        queue = self._queues.get(addr)
        woken = 0
        delay = 0
        while queue and woken < count:
            parked = queue.popleft()
            delay += WAKE_LATENCY
            parked.complete_at(delay, None)
            woken += 1
        self.stats.counter("threads_woken").inc(woken)
        # The waker itself is only charged one wake's worth of work in
        # the common case; bulk wakes overlap with its kernel exit.
        if woken:
            yield WAKE_LATENCY
        return woken

    def waiters(self, addr: Address) -> int:
        return len(self._queues.get(addr, ()))
