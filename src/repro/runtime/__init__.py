"""Thread runtime: generator-coroutine threads on simulated cores, an
OS-like scheduler with suspend/resume/migration, a futex service (the
kernel half of pthread-style blocking), and the synchronization
libraries -- pure-software baselines plus the paper's hybrid
hardware-with-software-fallback algorithms (Algorithms 1-3).
"""

from repro.runtime.thread import SimThread, ThreadCtx
from repro.runtime.scheduler import Scheduler
from repro.runtime.futex import FutexService
from repro.runtime.syncapi import SyncLibrary, make_library, LIBRARY_NAMES

__all__ = [
    "SimThread",
    "ThreadCtx",
    "Scheduler",
    "FutexService",
    "SyncLibrary",
    "make_library",
    "LIBRARY_NAMES",
]
