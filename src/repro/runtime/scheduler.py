"""OS-like thread scheduler: spawn, suspend, resume, migrate.

The paper assumes one thread per core; the scheduler enforces that and
provides the thread-management events (suspension, migration) whose
interaction with the MSA the paper's sections 4.1.2/4.2.2/4.3.2 define.
Suspension takes effect at the thread's next instruction boundary
unless the thread is blocked on a synchronization instruction, in which
case the sync unit's SUSPEND protocol interrupts it immediately.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.common.errors import DeadlockError, SimulationError
from repro.runtime.thread import SimThread, ThreadCtx
from repro.sim.kernel import Process


class Scheduler:
    def __init__(self, machine):
        self.machine = machine
        self.sim = machine.sim
        self.threads: List[SimThread] = []
        self.contexts: Dict[int, ThreadCtx] = {}
        self._core_owner: Dict[int, SimThread] = {}
        self._tids = itertools.count()
        self._procs: Dict[int, Process] = {}

    # ------------------------------------------------------------------
    def spawn(
        self,
        body: Callable[[ThreadCtx], "Generator"],
        core: Optional[int] = None,
        name: str = "",
        start_delay: int = 0,
        slot: Optional[int] = None,
    ) -> SimThread:
        """Start a thread running ``body(ctx)``.

        Default placement fills cores round-robin, then SMT slots:
        thread ``tid`` lands on core ``tid % n_cores``, slot
        ``tid // n_cores`` (with hw_threads == 1 this is core == tid,
        the paper's one-thread-per-core setup)."""
        n_cores = self.machine.params.n_cores
        hw_threads = self.machine.params.core.hw_threads
        tid = next(self._tids)
        thread = SimThread(tid, name=name or f"thread{tid}")
        target = (tid % n_cores) if core is None else core
        target_slot = (tid // n_cores) if core is None and slot is None else (slot or 0)
        if target >= n_cores:
            raise SimulationError(
                f"core {target} out of range for {n_cores}-core machine"
            )
        if target_slot >= hw_threads:
            raise SimulationError(
                f"slot {target_slot} out of range: core has {hw_threads} "
                f"hardware thread(s)"
            )
        key = (target, target_slot)
        if key in self._core_owner:
            raise SimulationError(
                f"core {target} slot {target_slot} already runs "
                f"{self._core_owner[key]}"
            )
        thread.core = target
        thread.slot = target_slot
        self._core_owner[key] = thread
        ctx = ThreadCtx(self.machine, thread)
        self.threads.append(thread)
        self.contexts[tid] = ctx

        def runner():
            yield from body(ctx)
            thread.finished = True
            self._core_owner.pop((thread.core, thread.slot), None)
            return None

        self._procs[tid] = self.sim.process(
            runner(), name=thread.name, delay=start_delay
        )
        return thread

    # ------------------------------------------------------------------
    def suspend(self, thread: SimThread) -> None:
        """Context-switch the thread off its core (interrupt, OS tick,
        ...).  If it is blocked on a sync instruction, the MSA SUSPEND
        protocol kicks in (squash or ABORT, per primitive)."""
        if thread.suspended or thread.finished:
            return
        thread.suspended = True
        thread._resume_future = self.sim.future()
        self._core_owner.pop((thread.core, thread.slot), None)
        if self.machine.tracer.active:
            self.machine.tracer.record(
                "sched", thread.name, "suspend", f"core={thread.core}"
            )
        self.machine.sync_unit(thread.core).suspend_current(thread.slot)

    def resume(
        self,
        thread: SimThread,
        core: Optional[int] = None,
        slot: Optional[int] = None,
    ) -> None:
        """Resume a suspended thread, optionally migrating it."""
        if not thread.suspended:
            raise SimulationError(f"{thread} is not suspended")
        target = thread.core if core is None else core
        target_slot = thread.slot if slot is None else slot
        if (target, target_slot) in self._core_owner:
            raise SimulationError(
                f"cannot resume {thread} on busy core {target} "
                f"slot {target_slot}"
            )
        self._core_owner[(target, target_slot)] = thread
        migrated = target != thread.core
        thread.core = target
        thread.slot = target_slot
        if self.machine.tracer.active:
            self.machine.tracer.record(
                "sched",
                thread.name,
                "migrate" if migrated else "resume",
                f"core={target}",
            )
        latency = self.machine.params.core.context_switch_latency
        resume_future = thread._resume_future

        def do_resume():
            thread.suspended = False
            thread.resume_count += 1
            thread._resume_future = None
            resume_future.complete(None)

        self.sim.schedule(latency, do_resume)

    # ------------------------------------------------------------------
    def all_finished(self) -> bool:
        return all(t.finished for t in self.threads)

    def check_for_deadlock(self) -> None:
        """Called when the event queue drains: any unfinished thread is
        deadlocked (blocked on a future nothing will complete).  The
        error message describes *what* each thread is blocked on, and
        the raised :class:`DeadlockError` carries the watchdog's full
        triage dump (runnable/suspended thread sets, in-flight NoC
        messages, MSA entry occupancy) for post-mortem analysis."""
        stuck = [t for t in self.threads if not t.finished]
        if not stuck:
            return
        details = []
        for thread in stuck[:8]:
            proc = self._procs.get(thread.tid)
            waiting = proc.blocked_on if proc is not None else None
            if thread.suspended:
                state = "suspended, never resumed"
            elif waiting is None:
                state = "not blocked on any future (starved?)"
            elif waiting.done:
                state = "blocked on an already-completed future (lost step?)"
            else:
                state = "blocked on an incomplete future (lost wakeup)"
            details.append(f"{thread.name}@core{thread.core}: {state}")
        from repro.resilience.watchdog import format_triage, triage_dump

        try:
            triage = triage_dump(self.machine)
            summary = f" [triage: {format_triage(triage)}]"
        except Exception:  # diagnostics must never mask the deadlock
            triage, summary = {}, ""
        raise DeadlockError(
            f"{len(stuck)} thread(s) never finished: "
            + "; ".join(details)
            + summary,
            blocked=stuck,
            triage=triage,
        )
