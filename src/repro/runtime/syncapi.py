"""Synchronization libraries: the paper's hybrid algorithms and the
pure-software baselines.

:class:`HybridLibrary` is the runtime from paper section 4: every
operation first executes the hardware instruction and falls back to the
software implementation on FAIL (or ABORT, per primitive), including
the FINISH notifications that keep the OMU counters balanced
(Algorithms 1, 2, 3).  Running it on an MSA-0 machine (instructions
always FAIL locally) measures the pure ISA/library overhead; running it
with the ideal oracle gives the zero-latency upper bound.

:class:`SoftwareLibrary` composes a lock, a barrier, and a condvar
implementation into the pthread / spinlock / MCS-Tour baselines.
"""

from __future__ import annotations

from typing import Generator

from repro.common.errors import ConfigError
from repro.common.types import Address, SyncOp, SyncResult
from repro.runtime.swsync.barrier import FutexBarrier, SpinBarrier
from repro.runtime.swsync.condvar import FutexCondVar
from repro.runtime.swsync.mcs import MCSLock
from repro.runtime.swsync.mutex import FutexMutex
from repro.runtime.swsync.spinlock import SpinLock
from repro.runtime.swsync.ticket import TicketLock


class SyncLibrary:
    """Interface both library families implement."""

    name = "abstract"

    def lock(self, th, addr: Address) -> Generator:
        raise NotImplementedError

    def unlock(self, th, addr: Address) -> Generator:
        raise NotImplementedError

    def barrier(self, th, addr: Address, goal: int) -> Generator:
        raise NotImplementedError

    def cond_wait(self, th, cond: Address, lock: Address) -> Generator:
        raise NotImplementedError

    def cond_signal(self, th, cond: Address) -> Generator:
        raise NotImplementedError

    def cond_broadcast(self, th, cond: Address) -> Generator:
        raise NotImplementedError


class SoftwareLibrary(SyncLibrary):
    """A pure-software library (never touches the sync ISA)."""

    def __init__(self, name, lock_impl, barrier_impl, condvar_impl):
        self.name = name
        self._lock = lock_impl
        self._barrier = barrier_impl
        self._condvar = condvar_impl

    def lock(self, th, addr: Address) -> Generator:
        yield from self._lock.lock(th, addr)

    def unlock(self, th, addr: Address) -> Generator:
        yield from self._lock.unlock(th, addr)

    def barrier(self, th, addr: Address, goal: int) -> Generator:
        yield from self._barrier.wait(th, addr, goal)

    def cond_wait(self, th, cond: Address, lock: Address) -> Generator:
        yield from self._condvar.wait(
            th, cond, lock, self._lock.lock, self._lock.unlock
        )

    def cond_signal(self, th, cond: Address) -> Generator:
        yield from self._condvar.signal(th, cond)

    def cond_broadcast(self, th, cond: Address) -> Generator:
        yield from self._condvar.broadcast(th, cond)


class HybridLibrary(SyncLibrary):
    """Hardware-first with software fallback (paper Algorithms 1-3)."""

    def __init__(self, fallback: SoftwareLibrary, condvar_impl):
        self.name = f"hybrid({fallback.name})"
        self.fallback = fallback
        # sw_cond_wait must use *these* hybrid lock functions internally
        # (section 4.3.3), not the fallback's raw lock.
        self._condvar = condvar_impl
        self.plane = None
        """Optional :class:`repro.faults.FaultPlane`: when a home tile
        is degraded mid-run, locks that died hardware-owned must not be
        software-acquired until the orphaned owner's UNLOCK transfers
        the release through the plane (the lock word in memory was
        never written by the hardware episode)."""

    def _recovery_gate(self, th, addr: Address) -> Generator:
        """Block until no orphaned hardware owner holds ``addr``."""
        if self.plane is None:
            return
        while True:
            gate = self.plane.gate_future(addr)
            if gate is None:
                return
            th.stats.counter("gate_waits").inc()
            yield gate

    # -- Algorithm 1 ----------------------------------------------------
    def lock(self, th, addr: Address) -> Generator:
        result = yield from th.sync(SyncOp.LOCK, addr)
        if result in (SyncResult.FAIL, SyncResult.ABORT):
            yield from self._recovery_gate(th, addr)
            yield from self.fallback.lock(th, addr)

    def unlock(self, th, addr: Address) -> Generator:
        result = yield from th.sync(SyncOp.UNLOCK, addr)
        if result is SyncResult.FAIL:
            if self.plane is not None and self.plane.transfer_release(addr):
                # We held the lock in (now-dead) hardware; the release
                # completes through the plane, not the lock word.
                return
            yield from self.fallback.unlock(th, addr)

    def trylock(self, th, addr: Address) -> Generator:
        """TRYLOCK extension: non-blocking acquire.  Returns True when
        the lock was taken (in hardware or software), False when busy.
        Release with the regular :meth:`unlock` either way."""
        result = yield from th.sync(SyncOp.TRYLOCK, addr)
        if result is SyncResult.SUCCESS:
            return True
        if result is SyncResult.BUSY:
            return False
        if self.plane is not None and self.plane.recovery_held(addr):
            # Orphaned hardware owner: busy, and the lock word is not
            # authoritative -- do not even attempt the CAS.
            yield from th.sync(SyncOp.FINISH, addr)
            return False
        # FAIL (or flaky-window ABORT): software trylock (one CAS
        # attempt).  The failed-FAIL case must notify the OMU (no
        # UNLOCK will follow), mirroring how FINISH balances
        # barrier/condvar fallbacks.
        old = yield from th.compare_and_swap(addr, 0, 1)
        if old == 0:
            return True
        yield from th.sync(SyncOp.FINISH, addr)
        return False

    # -- Algorithm 2 ----------------------------------------------------
    def barrier(self, th, addr: Address, goal: int) -> Generator:
        result = yield from th.sync(SyncOp.BARRIER, addr, aux=goal)
        if result in (SyncResult.FAIL, SyncResult.ABORT):
            yield from self.fallback.barrier(th, addr, goal)
            yield from th.sync(SyncOp.FINISH, addr)

    # -- Algorithm 3 ----------------------------------------------------
    def cond_wait(self, th, cond: Address, lock: Address) -> Generator:
        result = yield from th.sync(SyncOp.COND_WAIT, cond, aux=lock)
        if result is SyncResult.FAIL:
            yield from self._sw_cond_wait(th, cond, lock)
            yield from th.sync(SyncOp.FINISH, cond)
        elif result is SyncResult.ABORT:
            # Suspension fallback: re-acquire the lock (a spurious
            # wakeup, allowed by POSIX) and tell the OMU we left.
            yield from self.lock(th, lock)
            yield from th.sync(SyncOp.FINISH, cond)

    def _sw_cond_wait(self, th, cond: Address, lock: Address) -> Generator:
        def hybrid_lock(inner_th, addr):
            yield from self.lock(inner_th, addr)

        def hybrid_unlock(inner_th, addr):
            yield from self.unlock(inner_th, addr)

        yield from self._condvar.wait(th, cond, lock, hybrid_lock, hybrid_unlock)

    def cond_signal(self, th, cond: Address) -> Generator:
        result = yield from th.sync(SyncOp.COND_SIGNAL, cond)
        if result is SyncResult.FAIL:
            yield from self._condvar.signal(th, cond)

    def cond_broadcast(self, th, cond: Address) -> Generator:
        result = yield from th.sync(SyncOp.COND_BCAST, cond)
        if result is SyncResult.FAIL:
            yield from self._condvar.broadcast(th, cond)

    # -- No-spurious-wakeup variant (paper section 4.3.2) ---------------
    #
    # The paper sketches how COND_WAIT can serve condvar semantics with
    # no spurious wakeups: software keeps a wake timestamp; a waiter
    # reads it before waiting, and on ABORT (after re-acquiring the
    # lock) re-checks it -- if no signal/broadcast happened since, it
    # goes back to waiting instead of returning spuriously.  Signalers
    # bump the timestamp under the lock.  The caller may then use a
    # plain ``if`` around the wait instead of POSIX's mandatory
    # ``while`` loop.

    _WAKE_SEQ_SLOT = 0  # shared with the software condvar's seq word

    def _wake_seq_addr(self, cond: Address) -> Address:
        from repro.runtime.swsync.registry import SwStateRegistry

        return SwStateRegistry.word(cond, self._WAKE_SEQ_SLOT)

    def cond_wait_no_spurious(self, th, cond: Address, lock: Address) -> Generator:
        """COND_WAIT that never returns without an intervening
        signal/broadcast.  Must be called holding ``lock``; returns
        holding it.  Pair with the ``*_no_spurious`` notify calls."""
        seq0 = yield from th.load(self._wake_seq_addr(cond))
        while True:
            result = yield from th.sync(SyncOp.COND_WAIT, cond, aux=lock)
            if result is SyncResult.SUCCESS:
                return
            if result is SyncResult.FAIL:
                # The software fallback already has no-spurious
                # semantics (futex waiters re-check the seq word).
                yield from self._sw_cond_wait(th, cond, lock)
                yield from th.sync(SyncOp.FINISH, cond)
                return
            # ABORT: re-acquire the lock, then consult the timestamp.
            yield from self.lock(th, lock)
            yield from th.sync(SyncOp.FINISH, cond)
            seq = yield from th.load(self._wake_seq_addr(cond))
            if seq != seq0:
                return  # a wake-up did occur since we began waiting
            # Spurious (suspension-induced): go back to waiting.  The
            # next COND_WAIT releases the lock again.
            th.stats.counter("nospurious_rewaits").inc()

    def cond_signal_no_spurious(self, th, cond: Address) -> Generator:
        """Signal + timestamp bump (call while holding the lock)."""
        yield from th.fetch_add(self._wake_seq_addr(cond), 1)
        yield from self.cond_signal(th, cond)

    def cond_broadcast_no_spurious(self, th, cond: Address) -> Generator:
        yield from th.fetch_add(self._wake_seq_addr(cond), 1)
        yield from self.cond_broadcast(th, cond)


LIBRARY_NAMES = ("pthread", "spinlock", "ticket", "mcs-tour", "hybrid")


def make_library(name: str, machine) -> SyncLibrary:
    """Build a library wired to the machine's futex service and
    software-state registry."""
    futex = machine.futex
    registry = machine.sw_state
    if name == "pthread":
        return SoftwareLibrary(
            "pthread", FutexMutex(futex), FutexBarrier(futex), FutexCondVar(futex)
        )
    if name == "spinlock":
        return SoftwareLibrary(
            "spinlock", SpinLock(), SpinBarrier(), FutexCondVar(futex)
        )
    if name == "ticket":
        return SoftwareLibrary(
            "ticket", TicketLock(), SpinBarrier(), FutexCondVar(futex)
        )
    if name == "mcs-tour":
        from repro.runtime.swsync.tournament import TournamentBarrier

        return SoftwareLibrary(
            "mcs-tour",
            MCSLock(registry),
            TournamentBarrier(registry),
            FutexCondVar(futex),
        )
    if name == "hybrid":
        fallback = SoftwareLibrary(
            "pthread", FutexMutex(futex), FutexBarrier(futex), FutexCondVar(futex)
        )
        lib = HybridLibrary(fallback, FutexCondVar(futex))
        lib.plane = getattr(machine, "fault_plane", None)
        return lib
    raise ConfigError(f"unknown sync library {name!r}; options: {LIBRARY_NAMES}")
