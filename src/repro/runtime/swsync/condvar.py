"""pthread-style condition variables over the futex service.

The lock operations are injected, because the paper's hybrid runtime
needs a ``sw_cond_wait`` whose internal lock/unlock calls are the
hardware-with-software-fallback functions of Algorithm 1 (section
4.3.3) -- the condvar may run in software while its mutex runs in
hardware.

Layout: slot 0 = wake sequence number (futex word), slot 1 = waiter
count.  The signal/broadcast fast path skips the kernel entirely when
no waiter is registered, like glibc.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.common.types import Address
from repro.runtime.swsync.registry import SwStateRegistry

_SEQ_SLOT = 0
_WAITERS_SLOT = 1


class FutexCondVar:
    def __init__(self, futex):
        self.futex = futex

    def wait(
        self,
        th,
        cond: Address,
        lock: Address,
        lock_fn: Callable,
        unlock_fn: Callable,
    ) -> Generator:
        yield 18  # pthread_cond_wait call overhead
        seq_addr = SwStateRegistry.word(cond, _SEQ_SLOT)
        seq = yield from th.load(seq_addr)
        yield from th.fetch_add(SwStateRegistry.word(cond, _WAITERS_SLOT), 1)
        yield from unlock_fn(th, lock)
        while True:
            yield from self.futex.wait(th, seq_addr, seq)
            value = yield from th.load(seq_addr)
            if value != seq:
                break
        yield from th.fetch_add(SwStateRegistry.word(cond, _WAITERS_SLOT), -1)
        yield from lock_fn(th, lock)

    def signal(self, th, cond: Address) -> Generator:
        waiters = yield from th.load(
            SwStateRegistry.word(cond, _WAITERS_SLOT)
        )
        if waiters <= 0:
            return
        yield from th.fetch_add(SwStateRegistry.word(cond, _SEQ_SLOT), 1)
        yield from self.futex.wake(
            th, SwStateRegistry.word(cond, _SEQ_SLOT), 1
        )

    def broadcast(self, th, cond: Address) -> Generator:
        waiters = yield from th.load(
            SwStateRegistry.word(cond, _WAITERS_SLOT)
        )
        if waiters <= 0:
            return
        yield from th.fetch_add(SwStateRegistry.word(cond, _SEQ_SLOT), 1)
        yield from self.futex.wake(
            th, SwStateRegistry.word(cond, _SEQ_SLOT), 1 << 30
        )
