"""Tournament barrier (the "Tour" in the paper's MCS-Tour
configuration).

Arrival runs a log2(n)-round single-elimination bracket: in round k the
thread whose rank is a multiple of 2^k "wins" against the partner
rank + 2^(k-1), who signals its arrival flag and drops out to wait on
its personal release flag.  The champion (rank 0) then releases its
beaten partners in reverse order, and each released winner cascades the
release down its own sub-bracket.  Every flag lives on a private line
and every waiter spins locally, so both phases cost O(log n) cache
transfers.

Sense reversal makes the flags reusable across episodes; each thread's
sense is thread-private state (register/TLS in a real implementation).
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.common.types import Address
from repro.runtime.swsync.registry import SwStateRegistry


class TournamentBarrier:
    def __init__(self, registry: SwStateRegistry):
        self.registry = registry
        self._senses: Dict[Tuple[int, Address], int] = {}

    def _arrival_flag(self, barrier: Address, rnd: int, winner: int) -> Address:
        return self.registry.private_line("tour_arrive", barrier, rnd, winner)

    def _release_flag(self, barrier: Address, rank: int) -> Address:
        return self.registry.private_line("tour_release", barrier, rank)

    def wait(self, th, addr: Address, goal: int) -> Generator:
        yield 18  # call overhead: round/role computation
        rank = th.tid % goal
        key = (th.tid, addr)
        sense = 1 - self._senses.get(key, 0)
        self._senses[key] = sense

        beaten = []
        lost = False
        rnd = 1
        while (1 << (rnd - 1)) < goal:
            step = 1 << (rnd - 1)
            if rank % (1 << rnd) == 0:
                partner = rank + step
                if partner < goal:
                    beaten.append(partner)
                    yield from th.spin_until(
                        self._arrival_flag(addr, rnd, rank),
                        lambda v, want=sense: v == want,
                    )
                rnd += 1
                continue
            winner = rank - step
            yield from th.store(self._arrival_flag(addr, rnd, winner), sense)
            lost = True
            break

        if lost:
            yield from th.spin_until(
                self._release_flag(addr, rank), lambda v, want=sense: v == want
            )
        for partner in reversed(beaten):
            yield from th.store(self._release_flag(addr, partner), sense)
