"""Side-state allocation for software synchronization objects.

Software implementations need memory beyond the synchronization word
itself: MCS queue nodes, tournament flag arrays, per-object auxiliary
words.  The registry allocates them deterministically and memoizes, so
the same (object, role) pair always maps to the same simulated address.

Auxiliary words that belong to the same object share its cache line
(offset slots), mirroring how pthread objects lay out their fields;
per-thread structures (MCS nodes, tournament flags) get private lines,
mirroring how scalable-lock implementations pad to avoid false sharing.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.types import Address
from repro.mem.address import AddressAllocator

#: Byte offsets of auxiliary word slots within an object's line.
WORD_SIZE = 8


class SwStateRegistry:
    def __init__(self, allocator: AddressAllocator):
        self._allocator = allocator
        self._lines: Dict[Tuple, Address] = {}

    @staticmethod
    def word(addr: Address, slot: int) -> Address:
        """Auxiliary word ``slot`` on the same line as ``addr``."""
        return addr + slot * WORD_SIZE

    def private_line(self, *key) -> Address:
        """A dedicated line for ``key`` (e.g. an MCS node for
        ``("mcs", lock_addr, tid)``); stable across calls."""
        if key not in self._lines:
            self._lines[key] = self._allocator.line()
        return self._lines[key]

    def addr_key(self, addr: Address) -> Address:
        """Reverse lookup helper: MCS releases read a node address from
        memory, so node addresses must round-trip through the simulated
        memory as plain integers -- which they do (addresses are ints)."""
        return addr
