"""Test-and-test-and-set spinlock with capped exponential backoff.

All waiters spin on the (shared) lock word, so a release invalidates
every spinner's copy and triggers a read-miss storm followed by a
test-and-set scramble -- the coherence ping-pong the paper's hardware
handoff avoids.  Scaling from 16 to 64 cores degrades accordingly.
"""

from __future__ import annotations

from typing import Generator

from repro.common.types import Address


class SpinLock:
    def lock(self, th, addr: Address) -> Generator:
        yield 8  # call overhead: fenced test-and-set micro-ops
        while True:
            old = yield from th.test_and_set(addr)
            if old == 0:
                return
            yield from th.spin_until(addr, lambda v: v == 0)

    def unlock(self, th, addr: Address) -> Generator:
        yield 4  # call overhead: release fence
        yield from th.store(addr, 0)
