"""pthread-style futex mutex (the paper's software baseline).

Three-state word protocol (the classic glibc scheme): 0 = free,
1 = locked uncontended, 2 = locked with (possible) sleepers.  A brief
adaptive spin precedes the kernel sleep; unlock wakes one sleeper only
when the contended state was observed.
"""

from __future__ import annotations

from typing import Generator

from repro.common.types import Address

#: Adaptive-spin attempts before sleeping.  glibc's *default* mutex --
#: what pthread_mutex_lock gives you, and what the paper's baseline
#: uses -- does not spin at all; it goes straight to futex on
#: contention.  Set >0 to model PTHREAD_MUTEX_ADAPTIVE_NP.
SPIN_TRIES = 0
SPIN_PAUSE = 16

#: Library-call overhead: function call, fenced atomic micro-ops, and
#: error-path checks around the raw cache access (glibc's uncontended
#: pthread_mutex_lock costs tens of cycles even on an L1-resident word).
CALL_OVERHEAD_LOCK = 14
CALL_OVERHEAD_UNLOCK = 10


class FutexMutex:
    def __init__(self, futex):
        self.futex = futex

    def lock(self, th, addr: Address) -> Generator:
        yield CALL_OVERHEAD_LOCK
        old = yield from th.compare_and_swap(addr, 0, 1)
        if old == 0:
            return
        for _ in range(SPIN_TRIES):
            yield SPIN_PAUSE
            value = yield from th.load(addr)
            if value == 0:
                old = yield from th.compare_and_swap(addr, 0, 1)
                if old == 0:
                    return
        while True:
            old = yield from th.swap(addr, 2)
            if old == 0:
                return
            yield from self.futex.wait(th, addr, 2)

    def unlock(self, th, addr: Address) -> Generator:
        yield CALL_OVERHEAD_UNLOCK
        old = yield from th.swap(addr, 0)
        if old == 2:
            yield from self.futex.wake(th, addr, 1)
