"""Ticket lock: FIFO-fair, but all waiters still spin on one shared
"now serving" word (slot 1 of the lock's line), so handoff cost grows
with the number of spinners like the TTAS lock's does."""

from __future__ import annotations

from typing import Generator

from repro.common.types import Address
from repro.runtime.swsync.registry import SwStateRegistry

_TICKET_SLOT = 0  # next ticket to hand out (the lock address itself)
_SERVING_SLOT = 1  # now-serving counter


class TicketLock:
    def lock(self, th, addr: Address) -> Generator:
        my_ticket = yield from th.fetch_add(
            SwStateRegistry.word(addr, _TICKET_SLOT), 1
        )
        serving_addr = SwStateRegistry.word(addr, _SERVING_SLOT)
        serving = yield from th.load(serving_addr)
        if serving == my_ticket:
            return
        yield from th.spin_until(serving_addr, lambda v: v == my_ticket)

    def unlock(self, th, addr: Address) -> Generator:
        yield from th.fetch_add(
            SwStateRegistry.word(addr, _SERVING_SLOT), 1
        )
