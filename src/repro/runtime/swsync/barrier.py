"""Centralized sense-reversing barriers.

Two release flavors over the same arrival protocol (atomic fetch-add on
a shared counter, last arrival flips the sense word):

* :class:`FutexBarrier` -- waiters sleep in the (modeled) kernel, the
  releaser futex-wakes all of them; this is the pthread_barrier_wait
  baseline, whose release cost grows linearly with participants.
* :class:`SpinBarrier` -- waiters spin on the sense word; release is
  one store plus an invalidation/refill storm across all spinners.

Layout: slot 0 = arrival count, slot 1 = sense.
"""

from __future__ import annotations

from typing import Generator

from repro.common.types import Address
from repro.runtime.swsync.registry import SwStateRegistry

_COUNT_SLOT = 0
_SENSE_SLOT = 1


class FutexBarrier:
    def __init__(self, futex):
        self.futex = futex

    def wait(self, th, addr: Address, goal: int) -> Generator:
        yield 16  # pthread_barrier_wait call overhead
        sense_addr = SwStateRegistry.word(addr, _SENSE_SLOT)
        sense = yield from th.load(sense_addr)
        arrived = yield from th.fetch_add(
            SwStateRegistry.word(addr, _COUNT_SLOT), 1
        )
        if arrived + 1 == goal:
            yield from th.store(SwStateRegistry.word(addr, _COUNT_SLOT), 0)
            yield from th.store(sense_addr, 1 - sense)
            yield from self.futex.wake(th, sense_addr, goal - 1)
            return
        while True:
            yield from self.futex.wait(th, sense_addr, sense)
            value = yield from th.load(sense_addr)
            if value != sense:
                return


class SpinBarrier:
    def wait(self, th, addr: Address, goal: int) -> Generator:
        yield 10  # call overhead
        sense_addr = SwStateRegistry.word(addr, _SENSE_SLOT)
        sense = yield from th.load(sense_addr)
        arrived = yield from th.fetch_add(
            SwStateRegistry.word(addr, _COUNT_SLOT), 1
        )
        if arrived + 1 == goal:
            yield from th.store(SwStateRegistry.word(addr, _COUNT_SLOT), 0)
            yield from th.store(sense_addr, 1 - sense)
            return
        yield from th.spin_until(sense_addr, lambda v: v != sense)
