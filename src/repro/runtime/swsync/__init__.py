"""Software synchronization implementations, executed operation-by-
operation through the simulated coherent memory system.

* :mod:`mutex` -- pthread-style futex mutex (the paper's baseline)
* :mod:`spinlock` -- test-and-test-and-set spinlock with backoff
* :mod:`ticket` -- ticket lock (FIFO fairness, still one hot line)
* :mod:`mcs` -- MCS queue lock (local spinning; the "MCS" half of the
  paper's advanced-software MCS-Tour configuration)
* :mod:`barrier` -- centralized sense-reversing barriers (futex- and
  spin-release variants)
* :mod:`tournament` -- tournament barrier (the "Tour" half of MCS-Tour)
* :mod:`condvar` -- pthread-style condition variables over the futex
  service, parameterized by lock implementation (needed by the paper's
  ``sw_cond_wait``, section 4.3.3)
"""

from repro.runtime.swsync.registry import SwStateRegistry

__all__ = ["SwStateRegistry"]
