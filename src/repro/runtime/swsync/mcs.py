"""MCS queue lock (Mellor-Crummey & Scott): waiters spin on a flag in
their *own* queue node, so handoff is a single cache-to-cache transfer
regardless of contention -- the scalable-software comparison point of
the paper's MCS-Tour configuration.

Memory layout: the lock word holds the queue-tail node address (0 =
free).  Each (lock, thread) pair gets a private node line from the
state registry; slot 0 is ``next`` (successor node address, 0 = none),
slot 1 is ``locked`` (1 = spin, 0 = granted).
"""

from __future__ import annotations

from typing import Generator

from repro.common.types import Address
from repro.runtime.swsync.registry import SwStateRegistry

_NEXT_SLOT = 0
_LOCKED_SLOT = 1


class MCSLock:
    def __init__(self, registry: SwStateRegistry):
        self.registry = registry

    def _node(self, th, addr: Address) -> Address:
        return self.registry.private_line("mcs", addr, th.tid)

    def lock(self, th, addr: Address) -> Generator:
        yield 16  # call overhead: node setup + fenced swap micro-ops
        node = self._node(th, addr)
        yield from th.store(SwStateRegistry.word(node, _NEXT_SLOT), 0)
        yield from th.store(SwStateRegistry.word(node, _LOCKED_SLOT), 1)
        pred = yield from th.swap(addr, node)
        if pred == 0:
            return
        # Link behind the predecessor and spin locally on our own node.
        yield from th.store(SwStateRegistry.word(pred, _NEXT_SLOT), node)
        yield from th.spin_until(
            SwStateRegistry.word(node, _LOCKED_SLOT), lambda v: v == 0
        )

    def unlock(self, th, addr: Address) -> Generator:
        yield 12  # call overhead
        node = self._node(th, addr)
        successor = yield from th.load(SwStateRegistry.word(node, _NEXT_SLOT))
        if successor == 0:
            old = yield from th.compare_and_swap(addr, node, 0)
            if old == node:
                return  # No successor: lock is free again.
            # A successor is in the middle of enqueueing; wait for the
            # link to appear, then hand off.
            successor = yield from th.spin_until(
                SwStateRegistry.word(node, _NEXT_SLOT), lambda v: v != 0
            )
        yield from th.store(
            SwStateRegistry.word(successor, _LOCKED_SLOT), 0
        )
