"""Simulated threads.

A thread body is a generator function taking a :class:`ThreadCtx` and
composing the context's operation helpers with ``yield from``::

    def body(th):
        yield from th.compute(100)
        value = yield from th.load(addr)
        result = yield from th.sync(SyncOp.LOCK, lock_addr)

The context routes memory operations to the thread's *current* core
(migration changes the core), implements the suspend/squash/re-execute
protocol for synchronization instructions, and records per-thread stats.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.common.errors import SimulationError
from repro.common.stats import StatSet
from repro.common.types import Address, SyncOp, SyncResult, ThreadId
from repro.msa.isa import SQUASHED
from repro.sim.kernel import Future, Simulator


class SimThread:
    """Bookkeeping for one software thread."""

    def __init__(self, tid: ThreadId, name: str = ""):
        self.tid = tid
        self.name = name or f"thread{tid}"
        self.core: Optional[int] = None
        self.slot: int = 0
        """Hardware thread context on the core (SMT slot)."""

        self.suspended = False
        self.finished = False
        self.resume_count = 0
        """Incremented on every resume: lets services detect that a
        suspension interleaved with a multi-step operation (e.g. the
        futex check-and-sleep, which must be atomic)."""

        self._resume_future: Optional[Future] = None

    def __repr__(self) -> str:
        return f"SimThread({self.name}, core={self.core})"


class ThreadCtx:
    """The execution context handed to a thread body.

    Wired up by the scheduler: ``machine`` must expose ``sim``,
    ``memory_system(core)``, ``sync_unit(core)``, and ``sync_library``.
    """

    def __init__(self, machine, thread: SimThread):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.thread = thread
        self.stats = StatSet(f"thread.{thread.tid}")
        self._probe = getattr(machine, "probe", None)
        """Checker event bus; ``None`` (the common case) keeps every
        operation on the original no-probe path."""

        self._sync_depth = 0
        """Nesting depth inside sync-library calls: memory operations
        performed by lock/barrier/condvar *internals* (futexes, MCS
        queues) are implementation detail, not workload shared state,
        and must not feed the race detector."""

        # Hot-path stat handles, registered lazily so a thread that
        # never spins or syncs keeps its pre-existing counter set.
        self._sync_counters: dict = {}
        self._spin_polls = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def tid(self) -> ThreadId:
        return self.thread.tid

    @property
    def core(self) -> int:
        if self.thread.core is None:
            raise SimulationError(f"{self.thread} is not scheduled on a core")
        return self.thread.core

    # ------------------------------------------------------------------
    # Primitive operations (all used with ``yield from``)
    # ------------------------------------------------------------------
    def compute(self, cycles: int) -> Generator:
        """Spend ``cycles`` of local computation."""
        if cycles > 0:
            yield cycles
        return None

    def load(self, addr: Address) -> Generator:
        value = yield self.machine.memory_system(self.core).load(addr)
        if self.thread.suspended:
            yield from self._absorb_suspension()
        probe = self._probe
        if probe is not None and probe.mem_active and not self._sync_depth:
            probe.emit("mem_read", tid=self.tid, addr=addr)
        return value

    def store(self, addr: Address, value: int) -> Generator:
        yield self.machine.memory_system(self.core).store(addr, value)
        if self.thread.suspended:
            yield from self._absorb_suspension()
        probe = self._probe
        if probe is not None and probe.mem_active and not self._sync_depth:
            probe.emit("mem_write", tid=self.tid, addr=addr)
        return None

    def rmw(self, addr: Address, fn) -> Generator:
        """Atomic read-modify-write; returns the old value."""
        old = yield self.machine.memory_system(self.core).rmw(addr, fn)
        if self.thread.suspended:
            yield from self._absorb_suspension()
        probe = self._probe
        if probe is not None and probe.mem_active and not self._sync_depth:
            probe.emit("mem_atomic", tid=self.tid, addr=addr)
        return old

    def fetch_add(self, addr: Address, delta: int = 1) -> Generator:
        old = yield from self.rmw(addr, lambda v: v + delta)
        return old

    def test_and_set(self, addr: Address) -> Generator:
        old = yield from self.rmw(addr, lambda v: 1)
        return old

    def swap(self, addr: Address, new: int) -> Generator:
        old = yield from self.rmw(addr, lambda v: new)
        return old

    def compare_and_swap(self, addr: Address, expect: int, new: int) -> Generator:
        old = yield from self.rmw(addr, lambda v: new if v == expect else v)
        return old

    def sync(self, op: SyncOp, addr: Address, aux: int = 0) -> Generator:
        """Execute a hardware synchronization instruction (section 3's
        ISA); returns a :class:`SyncResult`.

        Handles the suspension protocol: a squashed LOCK re-executes
        after resume (possibly on a different core), and any result that
        lands while the thread is suspended is consumed only after
        resume (paper sections 4.1.2 / 4.3.2).
        """
        while True:
            result = yield self.machine.sync_unit(self.core).issue(
                op, addr, aux, slot=self.thread.slot
            )
            if result is SQUASHED:
                self.stats.counter("sync_squashed").inc()
                yield from self._absorb_suspension()
                continue
            if self.thread.suspended:
                yield from self._absorb_suspension()
            counter = self._sync_counters.get((op, result))
            if counter is None:
                counter = self._sync_counters[(op, result)] = self.stats.counter(
                    f"sync.{op.value}.{result.value}"
                )
            counter.value += 1
            return result

    def spin_until(self, addr: Address, predicate, max_backoff: int = 64) -> Generator:
        """Software spin-wait: poll ``addr`` through the cache until
        ``predicate(value)`` holds, with capped exponential backoff
        between polls (bounds simulation event count the same way real
        spin loops insert pause instructions)."""
        backoff = 4
        while True:
            value = yield from self.load(addr)
            if predicate(value):
                return value
            polls = self._spin_polls
            if polls is None:
                polls = self._spin_polls = self.stats.counter("spin_polls")
            polls.value += 1
            yield backoff
            backoff = min(max_backoff, backoff * 2)

    # ------------------------------------------------------------------
    # Suspension plumbing
    # ------------------------------------------------------------------
    def _absorb_suspension(self) -> Generator:
        """If the scheduler suspended this thread, park until resumed."""
        while self.thread.suspended:
            future = self.thread._resume_future
            if future is None:
                raise SimulationError(f"{self.thread} suspended without resume token")
            yield future
        return None

    # ------------------------------------------------------------------
    # High-level synchronization API (delegates to the machine's library)
    # ------------------------------------------------------------------
    # These wrappers are the checker probe's thread-level vantage point:
    # one call site per operation covers the hardware fast path, the
    # software fallback, and every recovery/retry flavor in between.
    def _guarded(self, op) -> Generator:
        self._sync_depth += 1
        try:
            yield from op
        finally:
            self._sync_depth -= 1

    def lock(self, addr: Address) -> Generator:
        probe = self._probe
        if probe is None:
            yield from self.machine.sync_library.lock(self, addr)
            return
        probe.emit("lock_req", tid=self.tid, addr=addr)
        yield from self._guarded(self.machine.sync_library.lock(self, addr))
        probe.emit("lock_acq", tid=self.tid, addr=addr)

    def unlock(self, addr: Address) -> Generator:
        probe = self._probe
        if probe is None:
            yield from self.machine.sync_library.unlock(self, addr)
            return
        probe.emit("lock_rel", tid=self.tid, addr=addr)
        yield from self._guarded(self.machine.sync_library.unlock(self, addr))

    def barrier(self, addr: Address, goal: int) -> Generator:
        probe = self._probe
        if probe is None:
            yield from self.machine.sync_library.barrier(self, addr, goal)
            return
        probe.emit("barrier_enter", tid=self.tid, addr=addr, aux=goal)
        yield from self._guarded(
            self.machine.sync_library.barrier(self, addr, goal)
        )
        probe.emit("barrier_exit", tid=self.tid, addr=addr, aux=goal)

    def cond_wait(self, cond: Address, lock: Address) -> Generator:
        probe = self._probe
        if probe is None:
            yield from self.machine.sync_library.cond_wait(self, cond, lock)
            return
        probe.emit("cond_wait_begin", tid=self.tid, addr=cond, aux=lock)
        yield from self._guarded(
            self.machine.sync_library.cond_wait(self, cond, lock)
        )
        probe.emit("cond_wait_end", tid=self.tid, addr=cond, aux=lock)

    def cond_signal(self, cond: Address) -> Generator:
        probe = self._probe
        if probe is not None:
            probe.emit("cond_signal", tid=self.tid, addr=cond, aux=0)
            yield from self._guarded(
                self.machine.sync_library.cond_signal(self, cond)
            )
            return
        yield from self.machine.sync_library.cond_signal(self, cond)

    def cond_broadcast(self, cond: Address) -> Generator:
        probe = self._probe
        if probe is not None:
            probe.emit("cond_signal", tid=self.tid, addr=cond, aux=1)
            yield from self._guarded(
                self.machine.sync_library.cond_broadcast(self, cond)
            )
            return
        yield from self.machine.sync_library.cond_broadcast(self, cond)
