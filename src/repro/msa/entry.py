"""An MSA entry: the hardware record for one active synchronization
address (paper Figure 1).

The fields mirror the hardware: the synchronization address, the 2-bit
type, the HWQueue bit-vector (waiting cores, plus the owner for locks),
the AuxInfo word (barrier goal count / condvar's associated lock / lock
pin count), and a valid bit (existence of the object).  We add explicit
bookkeeping the hardware keeps implicitly: per-waiter request ids so
responses can be matched, and the transient revoke/reserve states of the
HWSync-bit and condvar-pinning protocols.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.common.types import Address, CoreId, SyncType


@dataclass
class MSAEntry:
    addr: Address
    sync_type: SyncType

    # --- HWQueue -------------------------------------------------------
    owner: Optional[CoreId] = None
    """Lock owner (locks only); the paper encodes this in HWQueue."""

    waiters: "Dict[CoreId, int]" = field(default_factory=dict)
    """HWQueue waiting bits -> pending request id (insertion-ordered)."""

    # --- AuxInfo -------------------------------------------------------
    barrier_goal: int = 0
    """Barrier entries: the goal count carried by BARRIER requests."""

    pin_count: int = 0
    """Lock entries: number of condvar entries currently pinning this
    lock (incremented by UNLOCK&PIN, decremented by LOCK&UNPIN)."""

    cond_lock_addr: Optional[Address] = None
    """Condvar entries: the associated lock's address."""

    # --- HWSync-bit optimization state ---------------------------------
    hwsync_core: Optional[CoreId] = None
    """The core that last successfully completed a hardware lock
    operation for this address and may hold a valid HWSync-bit cache
    copy (section 5).  A grant to any other core must revoke it first."""

    last_owner: Optional[CoreId] = None
    """Reuse predictor state: who owned the lock last.  A grant to the
    same core sets ``reuse_mode``."""

    reuse_mode: bool = False
    """Same-core reuse observed: idle unlocks re-arm the releaser's
    HWSync bit (keeping the entry pinned until a revoke).  Without
    observed reuse the entry stays instantly evictable across idle
    periods, so single-use lock addresses never cost a revoke."""

    revoking: bool = False
    """A revoke round-trip to ``hwsync_core`` is in flight; grants are
    deferred until the acknowledgment arrives."""

    pending_grant: Optional[CoreId] = None
    """Core whose grant is deferred behind the in-flight revoke."""

    reclaiming: bool = False
    """The slice is lazily reclaiming this idle entry (revoke sent to
    ``hwsync_core`` so the entry can be freed for reuse)."""

    reclaim_waiters: list = field(default_factory=list)
    """Replay thunks for requests deferred behind this reclamation:
    they re-enter their handler once the revoke acknowledgment frees
    (or fails to free) the entry."""

    # --- Condvar reservation (UNLOCK&PIN handshake) --------------------
    reserved: bool = False
    """Condvar entries start reserved until the lock home confirms the
    UNLOCK&PIN; requests arriving meanwhile queue in ``reserve_queue``."""

    reserve_queue: Deque = field(default_factory=deque)

    def hwqueue_empty(self) -> bool:
        return self.owner is None and not self.waiters

    def evictable(self) -> bool:
        """Whether the entry may be deallocated right now.  An entry with
        an outstanding HWSync bit is *not* evictable -- the bit holder
        could silently re-acquire -- and must be reclaimed via revoke."""
        return (
            self.hwqueue_empty()
            and self.pin_count == 0
            and not self.revoking
            and not self.reserved
            and self.hwsync_core is None
        )

    def idle_cached(self) -> bool:
        """Empty except for an outstanding HWSync bit: reclaimable."""
        return (
            self.hwqueue_empty()
            and self.pin_count == 0
            and not self.revoking
            and not self.reserved
            and self.hwsync_core is not None
        )

    def __repr__(self) -> str:
        return (
            f"MSAEntry({self.sync_type.value}@{self.addr:#x} "
            f"owner={self.owner} waiters={list(self.waiters)} "
            f"pins={self.pin_count} hwsync={self.hwsync_core})"
        )
