"""The per-core synchronization instruction unit (the paper's ISA
extension, section 3).

A core issues one synchronization instruction at a time (each acts as a
memory fence and executes at ROB head, so the thread blocks on it).  The
unit:

* sends ``msa.req`` messages to the address's home tile and matches
  responses by request id;
* implements the MSA-0 mode (always return FAIL locally, no messages),
  which is how processors without accelerator hardware support the ISA;
* implements the HWSync-bit fast path: a LOCK whose address is in the
  local HWSync residency table completes immediately and only *notifies*
  the home (LOCK_SILENT), skipping the round trip (section 5);
* handles SUSPEND squashing when the scheduler interrupts a thread that
  is blocked on a synchronization instruction.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Optional

from repro.common.params import CoreParams, MSAParams
from repro.common.stats import StatSet
from repro.common.types import Address, CoreId, SyncOp, SyncResult
from repro.noc.message import Message
from repro.noc.network import Network
from repro.sim.kernel import Future, Simulator


class _Squashed:
    """Sentinel result: the instruction was squashed by a suspension and
    must be re-executed after the thread resumes (locks only)."""

    def __repr__(self) -> str:
        return "SQUASHED"


SQUASHED = _Squashed()

_req_ids = itertools.count(1)

#: Modes of the sync unit.
MODE_HW = "hw"
MODE_ALWAYS_FAIL = "always_fail"  # the paper's MSA-0 configuration
MODE_IDEAL = "ideal"

#: L1-residency budget for HWSync bits: a bit lives only while the lock's
#: line stays in the (modeled) cache, approximated by an LRU table.
HWSYNC_TABLE_SIZE = 64


class SyncUnit:
    """One core's synchronization instruction unit."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core_id: CoreId,
        core_params: CoreParams,
        msa_params: Optional[MSAParams],
        home_of: callable,
        mode: str = MODE_HW,
        ideal_oracle=None,
    ):
        self.sim = sim
        self.network = network
        self.core_id = core_id
        self.core_params = core_params
        self.msa_params = msa_params
        self.home_of = home_of
        self.mode = mode
        self.ideal_oracle = ideal_oracle
        self.stats = StatSet(f"sync_unit.{core_id}")
        self._issued_counts: Dict[SyncOp, object] = {}
        """Per-op ``issued.*`` counter handles, registered on first
        issue so the counter set matches the pre-binding unit."""

        # Silent-hit counter handles, same lazy-registration discipline
        # (these fire on the HWSync fast paths -- the *common* case on
        # lock-heavy workloads -- where a per-hit registry lookup plus
        # f-string was measurable).
        self._silent_lock_hits = None
        self._silent_unlock_hits = None
        self._fence_latency = core_params.sync_fence_latency
        self._requester_base = core_id * core_params.hw_threads

        self._pending: Dict[int, Future] = {}
        self._squashed_reqs: set = set()
        self._detached_reqs: set = set()
        self._pending_op: Dict[int, SyncOp] = {}
        self._pending_addr: Dict[int, Address] = {}
        self._pending_slot: Dict[int, int] = {}
        self._hwsync: "OrderedDict[Address, bool]" = OrderedDict()
        """Idle-armed HWSync bits: the lock is idle at the MSA and this
        core may take it silently.  Consumed *atomically* by the issuing
        hardware thread, so SMT siblings cannot double-acquire."""

        self._held: Dict[Address, int] = {}
        """addr -> hardware-thread slot that owns the lock through a
        hardware grant; enables the guaranteed-hit silent UNLOCK.  With
        SMT this must be per-slot: only the holder may silently
        release, and a sibling LOCK must go to the MSA."""

        self._silent_cancelled: Dict[Address, bool] = {}
        """Flags a pending silent acquire whose bit was revoked during
        the fence window (the send downgrades to a normal request)."""

        self.current_req: Dict[int, Optional[int]] = {}
        """Per-hardware-thread-slot request id of the instruction
        currently blocking that context (one thread per core unless the
        machine configures SMT)."""

        # Fault-recovery state; inert (never populated, never consulted
        # beyond `is None` checks) until arm_faults() is called.
        self._plane = None
        self._injector = None
        self._fault_params = None
        self._tracer = None
        self._hw_owned: Dict[Address, int] = {}
        """addr -> slot for every lock this core holds through a
        hardware grant, tracked independently of ``_held`` (which only
        exists under hwsync_opt).  Scanned by ``surrender_tile`` when a
        home dies: these grants live only in the dead slice's entry
        array, so the lock must transfer through the fault plane's
        recovery table, never through the (still-zero) software word."""

        self._pending_aux: Dict[int, int] = {}
        self._accepted: set = set()
        self._attempt: Dict[int, int] = {}
        self._heard: Dict[int, int] = {}
        """Life-sign count per pending request (accepts + pongs); the
        timeout check compares against a snapshot so contact during a
        window resets the escalation instead of racing it."""

        self._detached_info: Dict[int, tuple] = {}
        """req_id -> (addr, aux, requester) for in-flight detached
        notifications (silent-UNLOCK sends).  The instruction already
        retired, but the release itself must still land at the MSA: a
        flaky slice dropping it would strand the entry's owner field
        forever, so detached requests get their own bounded resend loop
        (``_check_detached``)."""
        self._detached_attempt: Dict[int, int] = {}

        if mode == MODE_HW:
            network.register(core_id, "msa_cpu", self._on_message)

    def arm_faults(self, plane, injector, fault_params, tracer=None) -> None:
        """Enable the timeout/retry/ping recovery machinery (machines
        built with a fault plan only)."""
        self._plane = plane
        self._injector = injector
        self._fault_params = fault_params
        self._tracer = tracer
        for name in ("retries", "pings", "timeouts", "stale_responses",
                     "degraded_local", "degraded_fails"):
            self.stats.counter(name)

    def _trace_fault(self, category: str, what: str, *detail) -> None:
        if self._tracer is not None and self._tracer.active:
            self._tracer.record(category, f"unit{self.core_id}", what, *detail)

    def _requester(self, slot: int) -> int:
        """The HWQueue bit index for this core's hardware thread
        ``slot`` (paper section 3: one bit per hardware thread)."""
        return self.core_id * self.core_params.hw_threads + slot

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def issue(
        self, op: SyncOp, addr: Address, aux: int = 0, slot: int = 0
    ) -> Future:
        """Execute a synchronization instruction from hardware-thread
        ``slot``; the future resolves to a :class:`SyncResult` (or
        ``SQUASHED`` after a suspension)."""
        future = self.sim.future()
        issued = self._issued_counts.get(op)
        if issued is None:
            issued = self._issued_counts[op] = self.stats.counter(
                f"issued.{op.value}"
            )
        issued.value += 1
        fence = self._fence_latency
        requester = self._requester_base + slot

        if self.mode == MODE_IDEAL:
            # Zero-latency oracle synchronization, no fence cost either.
            self.ideal_oracle.handle(op, addr, aux, requester, future)
            return future

        if self.mode == MODE_ALWAYS_FAIL:
            # MSA-0: the instruction is implemented trivially -- it
            # always FAILs, locally, without sending any message.
            self.stats.counter("always_fail").inc()
            future.complete_at(fence, SyncResult.FAIL)
            return future

        if self._injector is not None:
            fence += self._injector.issue_delay(self.core_id)

        if self._plane is not None and self._plane.is_degraded(self.home_of(addr)):
            # The home slice is dead: behave as MSA-0 for this address
            # (FAIL locally, no message), which routes the operation to
            # the software library.  FINISH succeeds trivially -- the
            # dead slice's OMU no longer matters.
            self.stats.counter("degraded_local").inc()
            self._trace_fault("degrade", "local_fail", op.value, f"addr={addr:#x}")
            self._hwsync.pop(addr, None)
            if self._held.get(addr) == slot:
                del self._held[addr]
            result = (
                SyncResult.SUCCESS if op is SyncOp.FINISH else SyncResult.FAIL
            )
            future.complete_at(fence, result)
            return future

        if op is SyncOp.FINISH:
            # Fire-and-forget OMU notification; completes at the core
            # as soon as the message is injected.
            self.sim.schedule(fence, self._send_finish, (addr, future))
            return future

        if op is SyncOp.UNLOCK:
            # Disarm any idle-armed bit before the release becomes
            # visible: after the MSA hands the lock to a waiter, a
            # silent re-acquire here would break mutual exclusion.  The
            # MSA re-arms us (response carries ``rearm``) when the lock
            # stayed idle, which is exactly the same-core re-acquire
            # case the optimization targets (section 5).
            self._hwsync.pop(addr, None)
            holder = self._held.get(addr)
            if (
                holder == slot
                and self.msa_params is not None
                and self.msa_params.hwsync_opt
            ):
                # We hold the lock via a hardware grant, so the MSA
                # entry exists and this UNLOCK cannot FAIL.  Retire it
                # immediately (modeling the predicted-SUCCESS
                # speculation an OoO core applies to the fallback
                # branch); the request travels as a notification whose
                # response is only consumed for re-arming.
                del self._held[addr]
                # The unlock retires here, so this core is no longer the
                # grant holder for recovery purposes.
                self._hw_owned.pop(addr, None)
                hits = self._silent_unlock_hits
                if hits is None:
                    hits = self._silent_unlock_hits = self.stats.counter(
                        "silent_unlock_hits"
                    )
                hits.value += 1
                req_id = next(_req_ids)
                self._detached_reqs.add(req_id)
                if self._plane is not None:
                    self._register_detached(req_id, addr, aux, requester)
                self.sim.schedule(
                    fence,
                    self._send_request,
                    (SyncOp.UNLOCK, addr, aux, req_id, requester),
                )
                future.complete_at(fence, SyncResult.SUCCESS)
                return future
            if holder == slot:
                del self._held[addr]
        elif op is SyncOp.COND_WAIT:
            # COND_WAIT releases the associated lock (aux) on our
            # behalf at the MSA; disarm/unhold it for the same reason.
            self._hwsync.pop(aux, None)
            if self._held.get(aux) == slot:
                del self._held[aux]
            self._hw_owned.pop(aux, None)

        if (
            op in (SyncOp.LOCK, SyncOp.TRYLOCK)
            and self.msa_params.hwsync_opt
            and self._hwsync.pop(addr, None)
        ):
            # HWSync fast path: atomically consume the idle-armed bit
            # (an SMT sibling issuing in the same window must miss it),
            # complete immediately, and notify the home.
            hits = self._silent_lock_hits
            if hits is None:
                hits = self._silent_lock_hits = self.stats.counter(
                    "silent_lock_hits"
                )
            hits.value += 1
            self._silent_cancelled[addr] = False
            self._held[addr] = slot
            if self._plane is not None:
                self._hw_owned[addr] = slot
            self.sim.schedule(
                fence, self._send_silent, (addr, future, requester, slot)
            )
            return future

        req_id = next(_req_ids)
        self._register_pending(req_id, op, addr, aux, slot, future)
        self.sim.schedule(
            fence, self._send_request, (op, addr, aux, req_id, requester)
        )
        return future

    def _register_pending(
        self,
        req_id: int,
        op: SyncOp,
        addr: Address,
        aux: int,
        slot: int,
        future: Future,
    ) -> None:
        self._pending[req_id] = future
        self._pending_op[req_id] = op
        self._pending_addr[req_id] = addr
        self._pending_slot[req_id] = slot
        self.current_req[slot] = req_id
        if self._plane is not None:
            self._pending_aux[req_id] = aux
            self._arm_timeout(req_id)

    def _send_request(self, req) -> None:
        # ``req`` is the (op, addr, aux, req_id, requester) tuple the
        # issue path schedules directly (no per-request closure).
        op, addr, aux, req_id, requester = req
        if req_id in self._squashed_reqs:
            # Suspended before the fence drained: nothing was sent, and
            # nothing needs undoing.
            self._squashed_reqs.discard(req_id)
            return
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.req",
                payload={
                    "op": op.value,
                    "addr": addr,
                    "aux": aux,
                    "core": requester,
                    "req_id": req_id,
                },
            )
        )

    def _send_finish(self, addr_future) -> None:
        addr, future = addr_future
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.finish",
                payload={"addr": addr, "core": self.core_id},
            )
        )
        future.complete(SyncResult.SUCCESS)

    def _send_silent(self, state) -> None:
        addr, future, requester, slot = state
        # A revoke may have landed during the fence window; the bit was
        # already consumed at issue, so the revoke handler flags us.
        if self._silent_cancelled.pop(addr, False):
            self.stats.counter("silent_lock_lost_race").inc()
            if self._held.get(addr) == slot:
                del self._held[addr]
            self._hw_owned.pop(addr, None)
            # Fall back to a normal LOCK round trip.
            req_id = next(_req_ids)
            self._register_pending(req_id, SyncOp.LOCK, addr, 0, slot, future)
            self._send_request((SyncOp.LOCK, addr, 0, req_id, requester))
            return
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.silent",
                payload={"addr": addr, "core": requester},
            )
        )
        future.complete(SyncResult.SUCCESS)

    # ------------------------------------------------------------------
    # Suspension (scheduler-driven)
    # ------------------------------------------------------------------
    def suspend_current(self, slot: int = 0) -> bool:
        """Interrupt the instruction currently blocking hardware thread
        ``slot`` of this core.

        Locks are squashed locally (the future resolves to ``SQUASHED``
        and the runtime re-executes after resume); barriers and condvars
        complete with the ABORT the MSA sends back.  Returns False when
        no instruction is blocking (nothing to do).
        """
        req_id = self.current_req.get(slot)
        if req_id is None or req_id not in self._pending:
            return False
        op = self._pending_op[req_id]
        addr = self._pending_addr[req_id]
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.suspend",
                payload={
                    "addr": addr,
                    "core": self._requester(slot),
                    "op": op.value,
                },
            )
        )
        self.stats.counter("suspends_sent").inc()
        if op in (SyncOp.LOCK, SyncOp.TRYLOCK):
            future = self._pending.pop(req_id)
            self._pending_op.pop(req_id)
            self._pending_addr.pop(req_id)
            self._squashed_reqs.add(req_id)
            self._clear_fault_state(req_id)
            self.current_req[slot] = None
            future.complete(SQUASHED)
        # Barriers/condvars: the MSA's ABORT response completes the
        # pending future; the runtime defers acting on it until resume.
        return True

    # ------------------------------------------------------------------
    # Response path
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if msg.kind == "msa_cpu.accept":
            # The home slice took delivery of our request (fault-plan
            # machines only): stop re-sending, keep ping-checking.
            req_id = msg.payload["req_id"]
            if req_id in self._pending:
                self._accepted.add(req_id)
                self._heard[req_id] = self._heard.get(req_id, 0) + 1
            return
        if msg.kind == "msa_cpu.pong":
            req_id = msg.payload["req_id"]
            if req_id in self._pending:
                self._heard[req_id] = self._heard.get(req_id, 0) + 1
            return
        if msg.kind == "msa_cpu.revoke":
            addr = msg.payload["addr"]
            self._hwsync.pop(addr, None)
            if addr in self._silent_cancelled:
                # A silent acquire is mid-fence: cancel it so its send
                # downgrades to a normal request (its message would
                # otherwise arrive after our acknowledgment, when the
                # MSA may already have freed or re-granted the entry).
                self._silent_cancelled[addr] = True
            self.stats.counter("hwsync_revoked").inc()
            self.network.send(
                Message(
                    src=self.core_id,
                    dst=msg.src,
                    kind="msa.revoke_ack",
                    payload={"addr": addr, "core": self.core_id},
                )
            )
            return
        if msg.kind != "msa_cpu.resp":
            raise ValueError(f"sync unit {self.core_id}: unknown {msg}")
        p = msg.payload
        req_id = p["req_id"]
        result: SyncResult = p["result"]
        if req_id in self._detached_reqs:
            # Silent-UNLOCK notification response: consumed only for the
            # re-arm bit (the instruction already retired as SUCCESS).
            self._detached_reqs.discard(req_id)
            self._detached_info.pop(req_id, None)
            self._detached_attempt.pop(req_id, None)
            if result is SyncResult.SUCCESS and p.get("rearm"):
                self._note_hwsync(p["addr"])
            return
        if req_id in self._squashed_reqs:
            self._squashed_reqs.discard(req_id)
            slot = self._pending_slot.pop(req_id, 0)
            # A grant raced our suspension: we now own a lock the thread
            # never observed acquiring.  Release it immediately.
            if result is SyncResult.SUCCESS:
                self.stats.counter("squashed_grant_released").inc()
                if p.get("grant_hwsync"):
                    self._held[p["addr"]] = slot
                if self._plane is not None:
                    self._hw_owned[p["addr"]] = slot
                self.issue(SyncOp.UNLOCK, p["addr"], slot=slot)
            return
        future = self._pending.pop(req_id, None)
        if future is None:
            if self._plane is not None:
                # A duplicate (response-cache replay) or a grant from a
                # home that was declared dead while it was in flight;
                # the request already resolved, so the response is void.
                self.stats.counter("stale_responses").inc()
                return
            raise ValueError(
                f"sync unit {self.core_id}: response for unknown req {req_id}"
            )
        op = self._pending_op.pop(req_id, None)
        self._pending_addr.pop(req_id, None)
        req_slot = self._pending_slot.pop(req_id, 0)
        self._clear_fault_state(req_id)
        if self.current_req.get(req_slot) == req_id:
            self.current_req[req_slot] = None
        if result is SyncResult.SUCCESS:
            if p.get("grant_hwsync"):
                # A lock grant: we hold it (silent-unlock fast path).
                self._held[p["addr"]] = req_slot
            if p.get("rearm"):
                self._note_hwsync(p["addr"])
            if self._plane is not None:
                if op in (SyncOp.LOCK, SyncOp.TRYLOCK):
                    self._hw_owned[p["addr"]] = req_slot
                elif op is SyncOp.UNLOCK:
                    self._hw_owned.pop(p["addr"], None)
        future.complete(result)

    def _note_hwsync(self, addr: Address) -> None:
        """Record the HWSync bit; capacity models L1 residency.  Evicted
        bits are simply lost (the next LOCK takes the normal path; the
        MSA reclaims the stale grant lazily via revoke)."""
        self._hwsync[addr] = True
        self._hwsync.move_to_end(addr)
        while len(self._hwsync) > HWSYNC_TABLE_SIZE:
            self._hwsync.popitem(last=False)

    def holds_hwsync(self, addr: Address) -> bool:
        """Whether the idle-armed HWSync bit is set (a silent LOCK
        would hit)."""
        return bool(self._hwsync.get(addr))

    def holds_lock_grant(self, addr: Address, slot: int = 0) -> bool:
        """Whether hardware-thread ``slot`` holds ``addr`` through a
        hardware grant (a silent UNLOCK would hit)."""
        return self._held.get(addr) == slot

    # ------------------------------------------------------------------
    # Fault recovery: timeout/retry/ping escalation and degradation
    # ------------------------------------------------------------------
    def _clear_fault_state(self, req_id: int) -> None:
        if self._plane is None:
            return
        self._accepted.discard(req_id)
        self._attempt.pop(req_id, None)
        self._heard.pop(req_id, None)
        self._pending_aux.pop(req_id, None)

    def _timeout_for(self, attempt: int) -> int:
        fp = self._fault_params
        return min(fp.request_timeout << attempt, fp.request_timeout_max)

    def _arm_timeout(self, req_id: int) -> None:
        snapshot = self._heard.get(req_id, 0)
        self.sim.schedule(
            self._timeout_for(self._attempt.get(req_id, 0)),
            lambda: self._check_timeout(req_id, snapshot),
        )

    def _register_detached(self, req_id: int, addr: Address, aux: int,
                           requester: int) -> None:
        """Watch a detached notification (silent-UNLOCK send) whose
        response nobody awaits.  Unlike ``_pending`` requests there is
        no blocked instruction to fail over, but the release must reach
        the home slice or its entry stays owned forever."""
        self._detached_info[req_id] = (addr, aux, requester)
        self.sim.schedule(
            self._timeout_for(0), lambda: self._check_detached(req_id)
        )

    def _check_detached(self, req_id: int) -> None:
        if req_id not in self._detached_reqs:
            # Response consumed (or the detached branch cleaned up): the
            # release landed.
            self._detached_info.pop(req_id, None)
            self._detached_attempt.pop(req_id, None)
            return
        addr, aux, requester = self._detached_info[req_id]
        if self._plane.is_degraded(self.home_of(addr)):
            # The home died; its entry array is gone, and recovery of
            # the lock goes through the plane's orphan table.  Nothing
            # left to notify.
            self._detached_reqs.discard(req_id)
            self._detached_info.pop(req_id, None)
            self._detached_attempt.pop(req_id, None)
            return
        attempt = self._detached_attempt.get(req_id, 0)
        if attempt >= self._fault_params.max_retries:
            # A home that swallowed every resend of a release is as dead
            # as one that stopped answering LOCKs: escalate.
            self.stats.counter("timeouts").inc()
            self._trace_fault(
                "retry", "detached_give_up", f"req={req_id}", f"addr={addr:#x}"
            )
            self._plane.declare_dead(self.home_of(addr))
            return
        self._detached_attempt[req_id] = attempt + 1
        self.stats.counter("retries").inc()
        self._trace_fault(
            "retry", "detached_resend", f"req={req_id}", f"addr={addr:#x}"
        )
        # Idempotent: the slice dedups by req_id and replays the cached
        # response if the original was actually processed.
        self._send_request((SyncOp.UNLOCK, addr, aux, req_id, requester))
        self.sim.schedule(
            self._timeout_for(attempt + 1),
            lambda: self._check_detached(req_id),
        )

    def _check_timeout(self, req_id: int, heard_snapshot: int) -> None:
        if req_id not in self._pending:
            return
        addr = self._pending_addr[req_id]
        if self._plane.is_degraded(self.home_of(addr)):
            # Registered in the narrow window while the tile was being
            # declared dead (e.g. a silent-acquire downgrade mid-fence):
            # the degradation sweep missed it, fail it now.
            self._fail_pending_request(req_id)
            return
        if self._heard.get(req_id, 0) != heard_snapshot:
            # The home showed life during the window (accept or pong):
            # the request is legitimately queued -- lock contention, a
            # barrier filling up -- not lost.  Reset the escalation.
            self._attempt[req_id] = 0
            self._arm_timeout(req_id)
            return
        attempt = self._attempt.get(req_id, 0)
        if attempt >= self._fault_params.max_retries:
            self._resolve_timeout(req_id, addr)
            return
        self._attempt[req_id] = attempt + 1
        if req_id not in self._accepted:
            # Never delivered as far as we know: re-send the request.
            # Retries are idempotent -- the slice deduplicates by req_id
            # and replays cached responses.
            self.stats.counter("retries").inc()
            self._trace_fault("retry", "resend", f"req={req_id}", f"addr={addr:#x}")
            op = self._pending_op[req_id]
            aux = self._pending_aux.get(req_id, 0)
            slot = self._pending_slot.get(req_id, 0)
            self._send_request((op, addr, aux, req_id, self._requester(slot)))
        else:
            # Delivered but unanswered: probe liveness.  A live slice
            # pongs (even while we sit in its HWQueue); only true
            # silence escalates toward degradation.
            self.stats.counter("pings").inc()
            self._trace_fault("retry", "ping", f"req={req_id}", f"addr={addr:#x}")
            self.network.send(
                Message(
                    src=self.core_id,
                    dst=self.home_of(addr),
                    kind="msa.ping",
                    payload={"req_id": req_id},
                )
            )
        self._arm_timeout(req_id)

    def _resolve_timeout(self, req_id: int, addr: Address) -> None:
        tile = self.home_of(addr)
        self.stats.counter("timeouts").inc()
        self._trace_fault("retry", "timeout", f"req={req_id}", f"tile={tile}")
        # declare_dead sweeps fail_pending_to() over every unit, which
        # resolves this request (and all others homed at the tile).
        self._plane.declare_dead(tile)
        if req_id in self._pending:  # pragma: no cover - defensive
            self._fail_pending_request(req_id)

    def _fail_pending_request(self, req_id: int) -> None:
        future = self._pending.pop(req_id)
        self._pending_op.pop(req_id, None)
        self._pending_addr.pop(req_id, None)
        slot = self._pending_slot.pop(req_id, 0)
        if self.current_req.get(slot) == req_id:
            self.current_req[slot] = None
        self._clear_fault_state(req_id)
        self.stats.counter("degraded_fails").inc()
        future.complete(SyncResult.FAIL)

    def surrender_tile(self, tile) -> list:
        """Drop all local fast-path state homed at a dead ``tile`` and
        return the addresses this core still holds through orphaned
        hardware grants (the fault plane parks them in its recovery
        table so software fallback cannot acquire them early)."""
        orphans = []
        for addr in [a for a in self._hw_owned if self.home_of(a) == tile]:
            del self._hw_owned[addr]
            self._held.pop(addr, None)
            orphans.append(addr)
        for addr in [a for a in self._hwsync if self.home_of(a) == tile]:
            del self._hwsync[addr]
        return orphans

    def fail_pending_to(self, tile) -> None:
        """FAIL every request pending against a dead ``tile``.  State is
        cleared before any future completes so callbacks re-issuing
        operations observe a consistent unit."""
        victims = []
        for req_id in [
            r for r, a in self._pending_addr.items() if self.home_of(a) == tile
        ]:
            future = self._pending.pop(req_id)
            self._pending_op.pop(req_id, None)
            self._pending_addr.pop(req_id, None)
            slot = self._pending_slot.pop(req_id, 0)
            if self.current_req.get(slot) == req_id:
                self.current_req[slot] = None
            self._clear_fault_state(req_id)
            victims.append(future)
        if victims:
            self.stats.counter("degraded_fails").inc(len(victims))
            self._trace_fault("degrade", "fail_pending", f"tile={tile}",
                              f"count={len(victims)}")
        for future in victims:
            future.complete(SyncResult.FAIL)
