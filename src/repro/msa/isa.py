"""The per-core synchronization instruction unit (the paper's ISA
extension, section 3).

A core issues one synchronization instruction at a time (each acts as a
memory fence and executes at ROB head, so the thread blocks on it).  The
unit:

* sends ``msa.req`` messages to the address's home tile and matches
  responses by request id;
* implements the MSA-0 mode (always return FAIL locally, no messages),
  which is how processors without accelerator hardware support the ISA;
* implements the HWSync-bit fast path: a LOCK whose address is in the
  local HWSync residency table completes immediately and only *notifies*
  the home (LOCK_SILENT), skipping the round trip (section 5);
* handles SUSPEND squashing when the scheduler interrupts a thread that
  is blocked on a synchronization instruction.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Optional

from repro.common.params import CoreParams, MSAParams
from repro.common.stats import StatSet
from repro.common.types import Address, CoreId, SyncOp, SyncResult
from repro.noc.message import Message
from repro.noc.network import Network
from repro.sim.kernel import Future, Simulator


class _Squashed:
    """Sentinel result: the instruction was squashed by a suspension and
    must be re-executed after the thread resumes (locks only)."""

    def __repr__(self) -> str:
        return "SQUASHED"


SQUASHED = _Squashed()

_req_ids = itertools.count(1)

#: Modes of the sync unit.
MODE_HW = "hw"
MODE_ALWAYS_FAIL = "always_fail"  # the paper's MSA-0 configuration
MODE_IDEAL = "ideal"

#: L1-residency budget for HWSync bits: a bit lives only while the lock's
#: line stays in the (modeled) cache, approximated by an LRU table.
HWSYNC_TABLE_SIZE = 64


class SyncUnit:
    """One core's synchronization instruction unit."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core_id: CoreId,
        core_params: CoreParams,
        msa_params: Optional[MSAParams],
        home_of: callable,
        mode: str = MODE_HW,
        ideal_oracle=None,
    ):
        self.sim = sim
        self.network = network
        self.core_id = core_id
        self.core_params = core_params
        self.msa_params = msa_params
        self.home_of = home_of
        self.mode = mode
        self.ideal_oracle = ideal_oracle
        self.stats = StatSet(f"sync_unit.{core_id}")
        self._pending: Dict[int, Future] = {}
        self._squashed_reqs: set = set()
        self._detached_reqs: set = set()
        self._pending_op: Dict[int, SyncOp] = {}
        self._pending_addr: Dict[int, Address] = {}
        self._pending_slot: Dict[int, int] = {}
        self._hwsync: "OrderedDict[Address, bool]" = OrderedDict()
        """Idle-armed HWSync bits: the lock is idle at the MSA and this
        core may take it silently.  Consumed *atomically* by the issuing
        hardware thread, so SMT siblings cannot double-acquire."""

        self._held: Dict[Address, int] = {}
        """addr -> hardware-thread slot that owns the lock through a
        hardware grant; enables the guaranteed-hit silent UNLOCK.  With
        SMT this must be per-slot: only the holder may silently
        release, and a sibling LOCK must go to the MSA."""

        self._silent_cancelled: Dict[Address, bool] = {}
        """Flags a pending silent acquire whose bit was revoked during
        the fence window (the send downgrades to a normal request)."""

        self.current_req: Dict[int, Optional[int]] = {}
        """Per-hardware-thread-slot request id of the instruction
        currently blocking that context (one thread per core unless the
        machine configures SMT)."""

        if mode == MODE_HW:
            network.register(core_id, "msa_cpu", self._on_message)

    def _requester(self, slot: int) -> int:
        """The HWQueue bit index for this core's hardware thread
        ``slot`` (paper section 3: one bit per hardware thread)."""
        return self.core_id * self.core_params.hw_threads + slot

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def issue(
        self, op: SyncOp, addr: Address, aux: int = 0, slot: int = 0
    ) -> Future:
        """Execute a synchronization instruction from hardware-thread
        ``slot``; the future resolves to a :class:`SyncResult` (or
        ``SQUASHED`` after a suspension)."""
        future = self.sim.future()
        self.stats.counter(f"issued.{op.value}").inc()
        fence = self.core_params.sync_fence_latency
        requester = self._requester(slot)

        if self.mode == MODE_IDEAL:
            # Zero-latency oracle synchronization, no fence cost either.
            self.ideal_oracle.handle(op, addr, aux, requester, future)
            return future

        if self.mode == MODE_ALWAYS_FAIL:
            # MSA-0: the instruction is implemented trivially -- it
            # always FAILs, locally, without sending any message.
            self.stats.counter("always_fail").inc()
            future.complete_at(fence, SyncResult.FAIL)
            return future

        if op is SyncOp.FINISH:
            # Fire-and-forget OMU notification; completes at the core
            # as soon as the message is injected.
            self.sim.schedule(fence, lambda: self._send_finish(addr, future))
            return future

        if op is SyncOp.UNLOCK:
            # Disarm any idle-armed bit before the release becomes
            # visible: after the MSA hands the lock to a waiter, a
            # silent re-acquire here would break mutual exclusion.  The
            # MSA re-arms us (response carries ``rearm``) when the lock
            # stayed idle, which is exactly the same-core re-acquire
            # case the optimization targets (section 5).
            self._hwsync.pop(addr, None)
            holder = self._held.get(addr)
            if (
                holder == slot
                and self.msa_params is not None
                and self.msa_params.hwsync_opt
            ):
                # We hold the lock via a hardware grant, so the MSA
                # entry exists and this UNLOCK cannot FAIL.  Retire it
                # immediately (modeling the predicted-SUCCESS
                # speculation an OoO core applies to the fallback
                # branch); the request travels as a notification whose
                # response is only consumed for re-arming.
                del self._held[addr]
                self.stats.counter("silent_unlock_hits").inc()
                req_id = next(_req_ids)
                self._detached_reqs.add(req_id)
                self.sim.schedule(
                    fence,
                    lambda: self._send_request(
                        SyncOp.UNLOCK, addr, aux, req_id, requester
                    ),
                )
                future.complete_at(fence, SyncResult.SUCCESS)
                return future
            if holder == slot:
                del self._held[addr]
        elif op is SyncOp.COND_WAIT:
            # COND_WAIT releases the associated lock (aux) on our
            # behalf at the MSA; disarm/unhold it for the same reason.
            self._hwsync.pop(aux, None)
            if self._held.get(aux) == slot:
                del self._held[aux]

        if (
            op in (SyncOp.LOCK, SyncOp.TRYLOCK)
            and self.msa_params.hwsync_opt
            and self._hwsync.pop(addr, None)
        ):
            # HWSync fast path: atomically consume the idle-armed bit
            # (an SMT sibling issuing in the same window must miss it),
            # complete immediately, and notify the home.
            self.stats.counter("silent_lock_hits").inc()
            self._silent_cancelled[addr] = False
            self._held[addr] = slot
            self.sim.schedule(
                fence, lambda: self._send_silent(addr, future, requester, slot)
            )
            return future

        req_id = next(_req_ids)
        self._pending[req_id] = future
        self._pending_op[req_id] = op
        self._pending_addr[req_id] = addr
        self._pending_slot[req_id] = slot
        self.current_req[slot] = req_id
        self.sim.schedule(
            fence, lambda: self._send_request(op, addr, aux, req_id, requester)
        )
        return future

    def _send_request(
        self, op: SyncOp, addr: Address, aux: int, req_id: int, requester: int
    ) -> None:
        if req_id in self._squashed_reqs:
            # Suspended before the fence drained: nothing was sent, and
            # nothing needs undoing.
            self._squashed_reqs.discard(req_id)
            return
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.req",
                payload={
                    "op": op.value,
                    "addr": addr,
                    "aux": aux,
                    "core": requester,
                    "req_id": req_id,
                },
            )
        )

    def _send_finish(self, addr: Address, future: Future) -> None:
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.finish",
                payload={"addr": addr, "core": self.core_id},
            )
        )
        future.complete(SyncResult.SUCCESS)

    def _send_silent(
        self, addr: Address, future: Future, requester: int, slot: int
    ) -> None:
        # A revoke may have landed during the fence window; the bit was
        # already consumed at issue, so the revoke handler flags us.
        if self._silent_cancelled.pop(addr, False):
            self.stats.counter("silent_lock_lost_race").inc()
            if self._held.get(addr) == slot:
                del self._held[addr]
            # Fall back to a normal LOCK round trip.
            req_id = next(_req_ids)
            self._pending[req_id] = future
            self._pending_op[req_id] = SyncOp.LOCK
            self._pending_addr[req_id] = addr
            self._pending_slot[req_id] = slot
            self.current_req[slot] = req_id
            self._send_request(SyncOp.LOCK, addr, 0, req_id, requester)
            return
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.silent",
                payload={"addr": addr, "core": requester},
            )
        )
        future.complete(SyncResult.SUCCESS)

    # ------------------------------------------------------------------
    # Suspension (scheduler-driven)
    # ------------------------------------------------------------------
    def suspend_current(self, slot: int = 0) -> bool:
        """Interrupt the instruction currently blocking hardware thread
        ``slot`` of this core.

        Locks are squashed locally (the future resolves to ``SQUASHED``
        and the runtime re-executes after resume); barriers and condvars
        complete with the ABORT the MSA sends back.  Returns False when
        no instruction is blocking (nothing to do).
        """
        req_id = self.current_req.get(slot)
        if req_id is None or req_id not in self._pending:
            return False
        op = self._pending_op[req_id]
        addr = self._pending_addr[req_id]
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of(addr),
                kind="msa.suspend",
                payload={
                    "addr": addr,
                    "core": self._requester(slot),
                    "op": op.value,
                },
            )
        )
        self.stats.counter("suspends_sent").inc()
        if op in (SyncOp.LOCK, SyncOp.TRYLOCK):
            future = self._pending.pop(req_id)
            self._pending_op.pop(req_id)
            self._pending_addr.pop(req_id)
            self._squashed_reqs.add(req_id)
            self.current_req[slot] = None
            future.complete(SQUASHED)
        # Barriers/condvars: the MSA's ABORT response completes the
        # pending future; the runtime defers acting on it until resume.
        return True

    # ------------------------------------------------------------------
    # Response path
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if msg.kind == "msa_cpu.revoke":
            addr = msg.payload["addr"]
            self._hwsync.pop(addr, None)
            if addr in self._silent_cancelled:
                # A silent acquire is mid-fence: cancel it so its send
                # downgrades to a normal request (its message would
                # otherwise arrive after our acknowledgment, when the
                # MSA may already have freed or re-granted the entry).
                self._silent_cancelled[addr] = True
            self.stats.counter("hwsync_revoked").inc()
            self.network.send(
                Message(
                    src=self.core_id,
                    dst=msg.src,
                    kind="msa.revoke_ack",
                    payload={"addr": addr, "core": self.core_id},
                )
            )
            return
        if msg.kind != "msa_cpu.resp":
            raise ValueError(f"sync unit {self.core_id}: unknown {msg}")
        p = msg.payload
        req_id = p["req_id"]
        result: SyncResult = p["result"]
        if req_id in self._detached_reqs:
            # Silent-UNLOCK notification response: consumed only for the
            # re-arm bit (the instruction already retired as SUCCESS).
            self._detached_reqs.discard(req_id)
            if result is SyncResult.SUCCESS and p.get("rearm"):
                self._note_hwsync(p["addr"])
            return
        if req_id in self._squashed_reqs:
            self._squashed_reqs.discard(req_id)
            slot = self._pending_slot.pop(req_id, 0)
            # A grant raced our suspension: we now own a lock the thread
            # never observed acquiring.  Release it immediately.
            if result is SyncResult.SUCCESS:
                self.stats.counter("squashed_grant_released").inc()
                if p.get("grant_hwsync"):
                    self._held[p["addr"]] = slot
                self.issue(SyncOp.UNLOCK, p["addr"], slot=slot)
            return
        future = self._pending.pop(req_id, None)
        if future is None:
            raise ValueError(
                f"sync unit {self.core_id}: response for unknown req {req_id}"
            )
        self._pending_op.pop(req_id, None)
        self._pending_addr.pop(req_id, None)
        req_slot = self._pending_slot.pop(req_id, 0)
        if self.current_req.get(req_slot) == req_id:
            self.current_req[req_slot] = None
        if result is SyncResult.SUCCESS:
            if p.get("grant_hwsync"):
                # A lock grant: we hold it (silent-unlock fast path).
                self._held[p["addr"]] = req_slot
            if p.get("rearm"):
                self._note_hwsync(p["addr"])
        future.complete(result)

    def _note_hwsync(self, addr: Address) -> None:
        """Record the HWSync bit; capacity models L1 residency.  Evicted
        bits are simply lost (the next LOCK takes the normal path; the
        MSA reclaims the stale grant lazily via revoke)."""
        self._hwsync[addr] = True
        self._hwsync.move_to_end(addr)
        while len(self._hwsync) > HWSYNC_TABLE_SIZE:
            self._hwsync.popitem(last=False)

    def holds_hwsync(self, addr: Address) -> bool:
        """Whether the idle-armed HWSync bit is set (a silent LOCK
        would hit)."""
        return bool(self._hwsync.get(addr))

    def holds_lock_grant(self, addr: Address, slot: int = 0) -> bool:
        """Whether hardware-thread ``slot`` holds ``addr`` through a
        hardware grant (a silent UNLOCK would hit)."""
        return self._held.get(addr) == slot
