"""Overflow Management Unit (paper section 3.2).

The OMU is a small set of saturating counters, indexed by the
synchronization address *without tagging*, that track how many threads
are currently active (waiting or lock-owning) in the *software*
implementation of each address.  A new MSA entry may only be allocated
when the address's counter reads zero; otherwise the request is steered
to software, preventing hardware and software from simultaneously
implementing the same synchronization object.

Aliasing (distinct addresses sharing a counter) can only steer an
operation to software -- a performance effect, never a correctness one.
A counting-Bloom-filter variant reduces aliasing with the same safety
property (no false "inactive" reports).
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.common.params import OMUParams
from repro.common.stats import StatSet
from repro.common.types import Address


class OverflowManagementUnit:
    """Simple indexed-counter OMU (the paper's evaluated design:
    four counters per slice)."""

    def __init__(self, params: OMUParams, stats: StatSet, line_shift: int = 6):
        self.params = params
        self.stats = stats
        self._counters: List[int] = [0] * params.n_counters
        self._line_shift = line_shift

    def _indices(self, addr: Address) -> List[int]:
        return [(addr >> self._line_shift) % self.params.n_counters]

    def is_active(self, addr: Address) -> bool:
        """True when software-side synchronization may be active on this
        address (counter non-zero): the MSA must steer to software."""
        return any(self._counters[i] > 0 for i in self._indices(addr))

    def increment(self, addr: Address, amount: int = 1) -> None:
        """A thread's operation on ``addr`` fell back to software."""
        self.stats.counter("omu_increments").inc(amount)
        for i in self._indices(addr):
            self._counters[i] = min(
                self.params.counter_max, self._counters[i] + amount
            )

    def decrement(self, addr: Address, amount: int = 1) -> None:
        """A software-side operation on ``addr`` completed."""
        self.stats.counter("omu_decrements").inc(amount)
        for i in self._indices(addr):
            if self._counters[i] < amount:
                # Legal programs never underflow; tolerate (and count)
                # misuse the way saturating hardware would.
                self.stats.counter("omu_underflows").inc()
                self._counters[i] = 0
            else:
                self._counters[i] -= amount

    @property
    def total(self) -> int:
        return sum(self._counters)

    def snapshot(self) -> List[int]:
        return list(self._counters)


class CountingBloomOmu(OverflowManagementUnit):
    """Counting-Bloom-filter OMU: ``k`` hashed positions per address.

    ``is_active`` is true iff *all* k positions are non-zero, so an
    address with software activity always reads active (no false
    negatives), while aliasing-induced false positives drop roughly
    exponentially with k.
    """

    def _indices(self, addr: Address) -> List[int]:
        line = addr >> self._line_shift
        out = []
        for k in range(self.params.bloom_hashes):
            digest = hashlib.blake2b(
                line.to_bytes(8, "little"), digest_size=4, salt=bytes([k])
            ).digest()
            out.append(int.from_bytes(digest, "little") % self.params.n_counters)
        return out

    def is_active(self, addr: Address) -> bool:
        return all(self._counters[i] > 0 for i in self._indices(addr))


def make_omu(params: OMUParams, stats: StatSet, line_shift: int = 6):
    """Build the OMU variant selected by the configuration."""
    cls = CountingBloomOmu if params.use_bloom else OverflowManagementUnit
    return cls(params, stats, line_shift)
