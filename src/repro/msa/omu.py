"""Overflow Management Unit (paper section 3.2).

The OMU is a small set of saturating counters, indexed by the
synchronization address *without tagging*, that track how many threads
are currently active (waiting or lock-owning) in the *software*
implementation of each address.  A new MSA entry may only be allocated
when the address's counter reads zero; otherwise the request is steered
to software, preventing hardware and software from simultaneously
implementing the same synchronization object.

Aliasing (distinct addresses sharing a counter) can only steer an
operation to software -- a performance effect, never a correctness one.
A counting-Bloom-filter variant reduces aliasing with the same safety
property (no false "inactive" reports).

Saturation is the one place an untagged saturating counter could lie
dangerously: once a counter pins at ``counter_max``, further increments
are lost, so letting later decrements walk it back down would reach
zero while software activity is still live -- a false "inactive" that
lets the MSA allocate an entry *over* a live software lock.  The unit
therefore makes saturation *sticky*: a counter that ever saturates
holds at ``counter_max`` (decrements are absorbed and counted) until
:meth:`reset` explicitly drains the unit.  Sticky saturation is purely
conservative -- aliased addresses are steered to software forever after,
a performance cost, never a safety one.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.common.params import OMUParams
from repro.common.stats import StatSet
from repro.common.types import Address


class OverflowManagementUnit:
    """Simple indexed-counter OMU (the paper's evaluated design:
    four counters per slice)."""

    def __init__(self, params: OMUParams, stats: StatSet, line_shift: int = 6):
        self.params = params
        self.stats = stats
        self._counters: List[int] = [0] * params.n_counters
        self._saturated: List[bool] = [False] * params.n_counters
        self._line_shift = line_shift

    def _indices(self, addr: Address) -> List[int]:
        return [(addr >> self._line_shift) % self.params.n_counters]

    def is_active(self, addr: Address) -> bool:
        """True when software-side synchronization may be active on this
        address (counter non-zero): the MSA must steer to software."""
        return any(self._counters[i] > 0 for i in self._indices(addr))

    def increment(self, addr: Address, amount: int = 1) -> None:
        """A thread's operation on ``addr`` fell back to software."""
        self.stats.counter("omu_increments").inc(amount)
        for i in self._indices(addr):
            if self._counters[i] + amount > self.params.counter_max:
                # Increments are being lost: the counter can no longer
                # account for every live software thread, so it must
                # never read zero again until an explicit drain.
                if not self._saturated[i]:
                    self._saturated[i] = True
                    self.stats.counter("omu_saturations").inc()
                self._counters[i] = self.params.counter_max
            else:
                self._counters[i] += amount

    def decrement(self, addr: Address, amount: int = 1) -> None:
        """A software-side operation on ``addr`` completed."""
        self.stats.counter("omu_decrements").inc(amount)
        for i in self._indices(addr):
            if self._saturated[i]:
                # Sticky: this counter under-counted at least once, so a
                # decrement cannot prove anything -- hold at the ceiling.
                self.stats.counter("omu_sticky_holds").inc()
                continue
            if self._counters[i] < amount:
                # Legal programs never underflow; tolerate (and count)
                # misuse the way saturating hardware would.
                self.stats.counter("omu_underflows").inc()
                self._counters[i] = 0
            else:
                self._counters[i] -= amount

    def reset(self) -> None:
        """Explicit drain (object-destroy / quiescence): clears every
        counter *and* every sticky-saturation flag -- the only legal way
        a saturated counter returns to service."""
        self.stats.counter("omu_resets").inc()
        self._counters = [0] * self.params.n_counters
        self._saturated = [False] * self.params.n_counters

    @property
    def total(self) -> int:
        return sum(self._counters)

    def saturated_counters(self) -> int:
        """How many counters are currently sticky-saturated."""
        return sum(self._saturated)

    def snapshot(self) -> List[int]:
        return list(self._counters)


class CountingBloomOmu(OverflowManagementUnit):
    """Counting-Bloom-filter OMU: ``k`` hashed positions per address.

    ``is_active`` is true iff *all* k positions are non-zero, so an
    address with software activity always reads active (no false
    negatives), while aliasing-induced false positives drop roughly
    exponentially with k.
    """

    def _indices(self, addr: Address) -> List[int]:
        line = addr >> self._line_shift
        out = []
        for k in range(self.params.bloom_hashes):
            digest = hashlib.blake2b(
                line.to_bytes(8, "little"), digest_size=4, salt=bytes([k])
            ).digest()
            out.append(int.from_bytes(digest, "little") % self.params.n_counters)
        return out

    def is_active(self, addr: Address) -> bool:
        return all(self._counters[i] > 0 for i in self._indices(addr))


def make_omu(params: OMUParams, stats: StatSet, line_shift: int = 6):
    """Build the OMU variant selected by the configuration."""
    cls = CountingBloomOmu if params.use_bloom else OverflowManagementUnit
    return cls(params, stats, line_shift)
