"""Zero-latency oracle synchronization (the paper's "Ideal"
configuration).

Every synchronization operation resolves in zero cycles with global
knowledge: lock handoff, barrier release, and condvar wake-up all happen
in the same cycle as the triggering operation.  The oracle exists to
measure how much performance a real implementation leaves on the table
(Figure 6's upper bound), and to expose the paper's "better is worse"
effect -- all threads leaving a barrier in the exact same cycle makes
cache misses burstier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.common.stats import StatSet
from repro.common.types import Address, CoreId, SyncOp, SyncResult
from repro.sim.kernel import Future, Simulator


@dataclass
class _LockState:
    owner: Optional[CoreId] = None
    waiters: Deque[Tuple[CoreId, Future]] = field(default_factory=deque)


@dataclass
class _BarrierState:
    arrived: Deque[Future] = field(default_factory=deque)


@dataclass
class _CondState:
    waiters: Deque[Tuple[CoreId, Future, Address]] = field(default_factory=deque)


class IdealSyncOracle:
    """Instant global synchronization arbiter."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.stats = StatSet("ideal_oracle")
        self._locks: Dict[Address, _LockState] = {}
        self._barriers: Dict[Address, _BarrierState] = {}
        self._conds: Dict[Address, _CondState] = {}

    def handle(
        self, op: SyncOp, addr: Address, aux: int, core: CoreId, future: Future
    ) -> None:
        self.stats.counter(f"op.{op.value}").inc()
        if op is SyncOp.LOCK:
            self._lock(addr, core, future)
        elif op is SyncOp.TRYLOCK:
            self._trylock(addr, core, future)
        elif op is SyncOp.UNLOCK:
            self._unlock(addr, core, future)
        elif op is SyncOp.BARRIER:
            self._barrier(addr, aux, future)
        elif op is SyncOp.COND_WAIT:
            self._cond_wait(addr, aux, core, future)
        elif op is SyncOp.COND_SIGNAL:
            self._cond_signal(addr, future, broadcast=False)
        elif op is SyncOp.COND_BCAST:
            self._cond_signal(addr, future, broadcast=True)
        elif op is SyncOp.FINISH:
            future.complete(SyncResult.SUCCESS)
        else:
            raise ProtocolError(f"ideal oracle: unexpected op {op}")

    # ------------------------------------------------------------------
    def _lock(self, addr: Address, core: CoreId, future: Future) -> None:
        state = self._locks.setdefault(addr, _LockState())
        if state.owner is None:
            state.owner = core
            future.complete(SyncResult.SUCCESS)
        else:
            state.waiters.append((core, future))

    def _trylock(self, addr: Address, core: CoreId, future: Future) -> None:
        state = self._locks.setdefault(addr, _LockState())
        if state.owner is None:
            state.owner = core
            future.complete(SyncResult.SUCCESS)
        else:
            future.complete(SyncResult.BUSY)

    def _unlock(self, addr: Address, core: CoreId, future: Future) -> None:
        state = self._locks.get(addr)
        if state is None or state.owner is None:
            raise ProtocolError(f"ideal: unlock of free lock {addr:#x}")
        future.complete(SyncResult.SUCCESS)
        if state.waiters:
            next_core, next_future = state.waiters.popleft()
            state.owner = next_core
            next_future.complete(SyncResult.SUCCESS)
        else:
            state.owner = None

    def _barrier(self, addr: Address, goal: int, future: Future) -> None:
        state = self._barriers.setdefault(addr, _BarrierState())
        state.arrived.append(future)
        if len(state.arrived) >= goal:
            arrived, state.arrived = state.arrived, deque()
            for f in arrived:
                f.complete(SyncResult.SUCCESS)

    def _cond_wait(
        self, cond: Address, lock: Address, core: CoreId, future: Future
    ) -> None:
        state = self._conds.setdefault(cond, _CondState())
        state.waiters.append((core, future, lock))
        # Release the associated lock instantly (POSIX wait semantics).
        release = self.sim.future()
        release.add_callback(lambda _value: None)
        self._unlock(lock, core, release)

    def _cond_signal(self, cond: Address, future: Future, broadcast: bool) -> None:
        future.complete(SyncResult.SUCCESS)
        state = self._conds.get(cond)
        if state is None or not state.waiters:
            return
        to_wake = list(state.waiters) if broadcast else [state.waiters[0]]
        for _ in to_wake:
            state.waiters.popleft()
        for core, wait_future, lock in to_wake:
            # Re-acquire the lock on the waiter's behalf; its COND_WAIT
            # completes when the lock is granted.
            self._lock(lock, core, wait_future)
