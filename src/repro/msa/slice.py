"""One tile's MSA slice: the distributed synchronization accelerator
(paper sections 3 and 4).

The slice owns the MSA entries for synchronization addresses homed at
this tile, the tile's OMU, and the per-slice NBTC fairness register.
It speaks four protocols over the NoC:

* core <-> slice: the ISA requests (``msa.req``), FINISH/SUSPEND
  notifications, and responses (``msa_cpu.resp``);
* the HWSync-bit protocol: silent re-acquire notifications
  (``msa.silent``) and revoke round-trips (``msa_cpu.revoke`` /
  ``msa.revoke_ack``) that keep silent acquisition safe;
* slice <-> slice: the condvar protocol that pins a condvar's lock to
  its MSA entry (``msa.unlock_pin`` / ``msa.lock_onbehalf`` / ...);
* entry reclamation: lazy revocation of idle HWSync-pinned entries when
  allocation pressure needs a free entry.

Safety argument mirrors the paper: an entry is allocated for an
acquire-type request only when the OMU counter for the address is zero
(no software-side owner/waiter exists), an existing entry always wins
the lookup (hardware episodes drain before software can start), and an
entry with an outstanding HWSync bit is never deallocated without a
revoke round-trip (so a silent re-acquire can never race with a
software fallback).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.errors import ProtocolError
from repro.common.params import MSAParams, OMUParams
from repro.common.stats import StatSet
from repro.common.types import Address, CoreId, SyncOp, SyncResult, SyncType, TileId
from repro.msa.entry import MSAEntry
from repro.msa.omu import make_omu
from repro.noc.message import Message
from repro.noc.network import Network
from repro.sim.kernel import Simulator


class MSASlice:
    """The synchronization accelerator slice at one tile."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tile: TileId,
        params: MSAParams,
        omu_params: OMUParams,
        home_of: callable,
        line_shift: int = 6,
        tracer=None,
        hw_threads: int = 1,
    ):
        self.sim = sim
        self.network = network
        self.tile = tile
        self.params = params
        self.omu_params = omu_params
        self.home_of = home_of
        self.tracer = tracer
        self.hw_threads = hw_threads
        """Hardware thread contexts per core; HWQueue entries are
        requester ids (core * hw_threads + slot, paper section 3)."""

        self.stats = StatSet(f"msa.{tile}")
        self.omu = make_omu(omu_params, self.stats, line_shift)
        self.entries: Dict[Address, MSAEntry] = {}
        self.nbtc: CoreId = 0
        """Next-bit-to-check register: one per slice (not per entry),
        round-robin start position for waiter selection (section 4.1)."""

        self.dead = False
        """Fail-stop flag: a killed slice ignores every message."""

        self.probe = None
        """Checker event bus (:mod:`repro.verify`); ``None`` keeps the
        hot path to a single attribute test, like ``tracer``."""

        # Fault machinery; inert until arm_faults() (fault-plan builds).
        self._injector = None
        self._plane = None
        self._fault_params = None
        self._inflight: set = set()
        """Accepted-but-unanswered req_ids: duplicates (core retries
        racing the original) are dropped, keeping retries idempotent.
        Requests answered remotely on our behalf (condvar wakeups
        complete at the *lock* home) stay in the set, which is exactly
        right -- a retry must not re-enqueue the waiter."""

        self._resp_cache: "OrderedDict[int, tuple]" = OrderedDict()
        """req_id -> response args for completed requests; a retry of a
        finished request replays the cached response instead of
        re-executing (exactly-once semantics at the protocol level)."""

        # Hot-path handles, bound lazily on first increment so a slice
        # that never performs the operation registers no counter (the
        # golden counter dictionaries depend on that).
        self._ops_hw = None
        self._ops_sw = None
        self._ops_aborted = None
        self._lock_grants = None
        self._req_counts: dict = {}
        self._access_latency = params.msa_access_latency

        network.register(tile, "msa", self._on_message)

    def arm_faults(self, injector, plane, fault_params) -> None:
        """Enable the fault plane's slice-side machinery: accept/pong
        keepalives, duplicate suppression, and flaky-window verdicts."""
        self._injector = injector
        self._plane = plane
        self._fault_params = fault_params
        for name in ("dup_suppressed", "resp_replayed", "pongs_sent"):
            self.stats.counter(name)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _trace(self, what: str, *detail) -> None:
        if self.tracer is not None and self.tracer.active:
            self.tracer.record("msa", f"slice{self.tile}", what, *detail)

    def _core_of(self, requester: CoreId) -> CoreId:
        """Physical core (tile) hosting a requester (HWQueue bit)."""
        return requester // self.hw_threads

    def _respond(
        self,
        core: CoreId,
        req_id: int,
        result: SyncResult,
        addr: Address,
        grant_hwsync: bool = False,
        rearm: bool = False,
    ) -> None:
        self._trace("respond", result.value, f"core={core}", f"addr={addr:#x}")
        if result is SyncResult.SUCCESS:
            ops = self._ops_hw
            if ops is None:
                ops = self._ops_hw = self.stats.counter("ops_hw")
        elif result is SyncResult.FAIL:
            ops = self._ops_sw
            if ops is None:
                ops = self._ops_sw = self.stats.counter("ops_sw")
        else:
            ops = self._ops_aborted
            if ops is None:
                ops = self._ops_aborted = self.stats.counter("ops_aborted")
        ops.value += 1
        if self._injector is not None:
            self._inflight.discard(req_id)
            self._resp_cache[req_id] = (core, result, addr, grant_hwsync, rearm)
            while len(self._resp_cache) > self._fault_params.response_cache_size:
                self._resp_cache.popitem(last=False)
        self.sim.schedule(
            self._access_latency,
            self._send_response,
            (core, req_id, result, addr, grant_hwsync, rearm),
        )

    def _send_response(self, args: tuple) -> None:
        """Emit the ``msa_cpu.resp`` for a completed request.  ``args``
        is the ``(core, req_id, result, addr, grant_hwsync, rearm)``
        tuple :meth:`_respond` scheduled (tuple arg, not a closure: one
        of these fires per accelerator operation)."""
        core, req_id, result, addr, grant_hwsync, rearm = args
        self.network.send(
            Message(
                src=self.tile,
                dst=self._core_of(core),
                kind="msa_cpu.resp",
                payload={
                    "result": result,
                    "req_id": req_id,
                    "addr": addr,
                    "grant_hwsync": grant_hwsync,
                    "rearm": rearm,
                },
            )
        )

    # ------------------------------------------------------------------
    # Fault-plane machinery (slice side)
    # ------------------------------------------------------------------
    def _admit_request(self, p: dict) -> bool:
        """Gatekeeper for ``msa.req`` under a fault plan: deduplicate
        retries, apply flaky-window verdicts, and acknowledge delivery
        (``msa_cpu.accept``) so the requesting unit stops re-sending."""
        req_id = p["req_id"]
        if req_id in self._resp_cache:
            # Retry of an already-answered request: replay the cached
            # response verbatim instead of re-executing the operation.
            self.stats["resp_replayed"].inc()
            self._trace("resp_replayed", f"req={req_id}")
            self.sim.schedule(
                self.params.msa_access_latency,
                lambda: self._send_response(self._expand_cached(req_id)),
            )
            return False
        if req_id in self._inflight:
            self.stats["dup_suppressed"].inc()
            return False
        verdict = self._injector.flaky_verdict(
            self.tile, entry_hit=p["addr"] in self.entries
        )
        if verdict == "drop":
            # As if the request died on the last hop: no accept, no
            # state change; the requester's retry recovers.
            return False
        self._inflight.add(req_id)
        self.network.send(
            Message(
                src=self.tile,
                dst=self._core_of(p["core"]),
                kind="msa_cpu.accept",
                payload={"req_id": req_id},
            )
        )
        op = SyncOp(p["op"])
        if verdict == "abort" and op in (
            SyncOp.LOCK,
            SyncOp.TRYLOCK,
            SyncOp.BARRIER,
        ):
            # Flaky ABORT is only safe for acquire-type requests that
            # *missed* in the entry array (the injector guarantees the
            # miss): charging the OMU steers the rest of the episode to
            # software, so it cannot split across hardware and software.
            # COND_WAIT is exempt -- its ABORT contract assumes the
            # associated lock was already released by the MSA.
            self._omu_increment(p["addr"])
            self._respond(p["core"], req_id, SyncResult.ABORT, p["addr"])
            return False
        return True

    def _expand_cached(self, req_id: int) -> tuple:
        core, result, addr, grant_hwsync, rearm = self._resp_cache[req_id]
        return core, req_id, result, addr, grant_hwsync, rearm

    def kill(self) -> None:
        """Fail-stop this slice at the current cycle.

        All entry, OMU, and fairness state is lost and every subsequent
        message is ignored; waiting sync units detect the silence via
        their timeout/ping escalation and degrade this home tile to
        software synchronization.  The one *dying gasp* the model grants
        is for condition-variable waiters parked in our entries: their
        wake-ups exist nowhere else, so they are aborted now (the
        runtime treats that as a spurious wakeup and re-acquires), and
        reservation-queued requests are failed into the software path.
        Lock and barrier waiters need no gasp -- their recovery is fully
        driven by the requester-side timeout machinery."""
        if self.dead:
            return
        self.dead = True
        self.stats.counter("killed").inc()
        self._trace("killed")
        if self.probe is not None:
            self.probe.emit("msa_kill", tile=self.tile)
        for entry in list(self.entries.values()):
            if entry.sync_type is not SyncType.CONDVAR:
                continue
            # Parked waiters released their lock (UNLOCK&PIN or
            # unlock-on-behalf): ABORT = spurious wakeup, re-acquire.
            for wcore, wreq in list(entry.waiters.items()):
                self._respond(wcore, wreq, SyncResult.ABORT, entry.addr)
            entry.waiters.clear()
            # Reservation-queued requests still hold their lock; FAIL
            # routes them to software, which releases it properly.
            for item in entry.reserve_queue:
                if item[0] == "cond_wait":
                    _, cond_addr, _lock_addr, core, req_id = item
                    self._respond(core, req_id, SyncResult.FAIL, cond_addr)
                else:
                    _, cond_addr, core, req_id, _bcast = item
                    self._respond(core, req_id, SyncResult.FAIL, cond_addr)
            entry.reserve_queue.clear()

    def _send_slice(self, dst: TileId, kind: str, **payload) -> None:
        self.sim.schedule(
            self.params.msa_access_latency,
            lambda: self.network.send(
                Message(src=self.tile, dst=dst, kind=kind, payload=payload)
            ),
        )

    def _send_revoke(self, core: CoreId, addr: Address) -> None:
        self.stats.counter("revokes_sent").inc()
        self._send_slice(core, "msa_cpu.revoke", addr=addr)

    def _omu_increment(self, addr: Address, amount: int = 1) -> None:
        if self.omu_params.enabled:
            self.omu.increment(addr, amount)
            if self.probe is not None:
                self.probe.emit(
                    "omu_inc", addr=addr, aux=amount, tile=self.tile
                )

    def _omu_decrement(self, addr: Address, amount: int = 1) -> None:
        if self.omu_params.enabled:
            self.omu.decrement(addr, amount)
            if self.probe is not None:
                self.probe.emit(
                    "omu_dec", addr=addr, aux=amount, tile=self.tile
                )

    def _omu_active(self, addr: Address) -> bool:
        return self.omu_params.enabled and self.omu.is_active(addr)

    @property
    def full(self) -> bool:
        if self.params.is_infinite:
            return False
        return len(self.entries) >= self.params.entries_per_tile

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------
    #: Sentinel: the request was queued behind an entry reclamation and
    #: will replay when the revoke acknowledgment arrives.
    DEFERRED = object()

    def _try_allocate(self, addr: Address, sync_type: SyncType, replay=None):
        """Allocate an entry for an acquire-type request.

        Returns the new entry, ``None`` when the request must be steered
        to software (Figures 2-4), or :data:`DEFERRED` when the slice is
        full of idle HWSync-pinned entries: the request then waits out
        one revoke round-trip and replays (``replay`` thunk) instead of
        paying a full software fallback.
        """
        if not self.params.supports(sync_type):
            return None
        if self._omu_active(addr):
            self.stats.counter("omu_steered_sw").inc()
            if self.probe is not None:
                self.probe.emit(
                    "omu_steer", addr=addr, aux=sync_type.value,
                    tile=self.tile,
                )
            return None
        if self.full and not self._evict_one_evictable():
            if replay is not None and self._defer_on_reclaim(replay):
                return self.DEFERRED
            self.stats.counter("alloc_full").inc()
            return None
        entry = MSAEntry(addr=addr, sync_type=sync_type)
        self.entries[addr] = entry
        self.stats.counter("entries_allocated").inc()
        self._trace("allocate", sync_type.value, f"addr={addr:#x}")
        if self.probe is not None:
            self.probe.emit(
                "msa_alloc",
                addr=addr,
                aux=(sync_type.value, len(self.entries)),
                tile=self.tile,
            )
        return entry

    def _defer_on_reclaim(self, replay) -> bool:
        """Queue ``replay`` behind an idle entry's reclamation (starting
        one if needed).  Returns False when no entry is reclaimable."""
        for entry in self.entries.values():
            if entry.reclaiming:
                entry.reclaim_waiters.append(replay)
                self.stats.counter("alloc_deferred").inc()
                return True
        for entry in self.entries.values():
            if entry.idle_cached():
                entry.reclaiming = True
                entry.revoking = True
                entry.reclaim_waiters.append(replay)
                self.stats.counter("reclaims_started").inc()
                self.stats.counter("alloc_deferred").inc()
                self._send_revoke(entry.hwsync_core, entry.addr)
                return True
        return False

    def _drop_entry(
        self,
        addr: Address,
        reason: str,
        counter: Optional[str] = "entries_freed",
    ) -> None:
        """Single exit point for entry deallocation: delete, count, and
        tell the checker probe why (the entry-conservation monitor
        balances allocations against these)."""
        del self.entries[addr]
        if counter is not None:
            self.stats.counter(counter).inc()
        if self.probe is not None:
            self.probe.emit("msa_free", addr=addr, aux=reason, tile=self.tile)

    def _maybe_free(self, entry: MSAEntry) -> None:
        if not self.omu_params.enabled:
            # "Without OMU" model (Figure 7): entries are only
            # allocated/deallocated at object init/destroy, so once an
            # address gets an entry it keeps it.
            return
        if not entry.evictable():
            return
        if entry.sync_type is SyncType.LOCK and self.params.hwsync_opt:
            # Keep idle lock entries on probation (they carry the reuse
            # predictor); they cost nothing -- allocation evicts them
            # instantly on demand, no revoke needed.
            return
        self._drop_entry(entry.addr, "idle")

    def _evict_one_evictable(self) -> bool:
        """Free one instantly-evictable entry to make room; returns
        False when none exists (never in the no-OMU model, where
        entries are permanent)."""
        if not self.omu_params.enabled:
            return False
        for entry in self.entries.values():
            if entry.evictable():
                self._drop_entry(entry.addr, "evict", counter="entries_evicted")
                return True
        return False

    def _select_waiter(self, entry: MSAEntry) -> CoreId:
        """Round-robin selection starting at the slice's NBTC register;
        updates NBTC to the position after the selected requester."""
        n = self.network.topology.n_tiles * self.hw_threads
        for offset in range(n):
            candidate = (self.nbtc + offset) % n
            if candidate in entry.waiters:
                self.nbtc = (candidate + 1) % n
                return candidate
        raise ProtocolError(f"select_waiter on empty HWQueue: {entry}")

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if self.dead:
            return
        kind = msg.kind
        p = msg.payload
        if self._injector is not None:
            if kind == "msa.ping":
                # Liveness probe from a waiting sync unit: any answer
                # (regardless of request state) resets its escalation.
                self.stats["pongs_sent"].inc()
                self.network.send(
                    Message(
                        src=self.tile,
                        dst=msg.src,
                        kind="msa_cpu.pong",
                        payload={"req_id": p["req_id"]},
                    )
                )
                return
            if kind == "msa.req" and not self._admit_request(p):
                return
        if kind == "msa.req":
            self._handle_request(
                SyncOp(p["op"]), p["addr"], p["aux"], p["core"], p["req_id"]
            )
        elif kind == "msa.silent":
            self._handle_silent(p["addr"], p["core"])
        elif kind == "msa.revoke_ack":
            self._handle_revoke_ack(p["addr"])
        elif kind == "msa.finish":
            self._omu_decrement(p["addr"])
        elif kind == "msa.suspend":
            self._handle_suspend(p["addr"], p["core"])
        elif kind == "msa.unlock_pin":
            self._handle_unlock_pin(p["lock_addr"], p["cond_addr"], p["waiter"], msg.src)
        elif kind == "msa.unlock_pin_resp":
            self._handle_unlock_pin_resp(p["cond_addr"], p["ok"])
        elif kind == "msa.unlock_onbehalf":
            self._handle_unlock_onbehalf(p["lock_addr"], p["waiter"])
        elif kind == "msa.lock_onbehalf":
            self._handle_lock_onbehalf(
                p["lock_addr"], p["waiter"], p["req_id"], p["unpin"]
            )
        elif kind == "msa.unpin":
            self._handle_unpin(p["lock_addr"])
        else:
            raise ProtocolError(f"MSA slice {self.tile}: unknown {msg}")

    def _handle_request(
        self, op: SyncOp, addr: Address, aux: int, core: CoreId, req_id: int
    ) -> None:
        counts = self._req_counts
        count = counts.get(op)
        if count is None:
            count = counts[op] = self.stats.counter(f"req.{op.value}")
        count.value += 1
        if op is SyncOp.LOCK:
            self._handle_lock(addr, core, req_id)
        elif op is SyncOp.TRYLOCK:
            self._handle_trylock(addr, core, req_id)
        elif op is SyncOp.UNLOCK:
            self._handle_unlock(addr, core, req_id)
        elif op is SyncOp.BARRIER:
            self._handle_barrier(addr, aux, core, req_id)
        elif op is SyncOp.COND_WAIT:
            self._handle_cond_wait(addr, aux, core, req_id)
        elif op is SyncOp.COND_SIGNAL:
            self._handle_cond_signal(addr, core, req_id, broadcast=False)
        elif op is SyncOp.COND_BCAST:
            self._handle_cond_signal(addr, core, req_id, broadcast=True)
        else:
            raise ProtocolError(f"unexpected request op {op}")

    def _typed_entry(
        self, addr: Address, sync_type: SyncType
    ) -> Optional[MSAEntry]:
        entry = self.entries.get(addr)
        if entry is not None and entry.sync_type is not sync_type:
            raise ProtocolError(
                f"address {addr:#x} used as {sync_type.value} but MSA entry "
                f"is {entry.sync_type.value}: mixed-type synchronization"
            )
        return entry

    # ------------------------------------------------------------------
    # Locks (section 4.1)
    # ------------------------------------------------------------------
    def _handle_lock(self, addr: Address, core: CoreId, req_id: int) -> None:
        entry = self._typed_entry(addr, SyncType.LOCK)
        if entry is None:
            entry = self._try_allocate(
                addr,
                SyncType.LOCK,
                replay=lambda: self._handle_lock(addr, core, req_id),
            )
            if entry is self.DEFERRED:
                return
            if entry is None:
                self._omu_increment(addr)
                self._respond(core, req_id, SyncResult.FAIL, addr)
                return
        entry.waiters[core] = req_id
        self._try_grant(entry)

    def _handle_trylock(self, addr: Address, core: CoreId, req_id: int) -> None:
        """TRYLOCK extension: grant immediately when the lock is free
        and hardware-manageable, respond BUSY when it is hardware-owned,
        never enqueue and never wait (not even for a revoke)."""
        entry = self._typed_entry(addr, SyncType.LOCK)
        if entry is None:
            entry = self._try_allocate(addr, SyncType.LOCK)
            if entry is None or entry is self.DEFERRED:
                # No entry and no instant allocation: steer to the
                # software trylock.  (The runtime balances the OMU with
                # FINISH when its software attempt fails to acquire.)
                if entry is self.DEFERRED:
                    raise ProtocolError("trylock must not be deferred")
                self._omu_increment(addr)
                self._respond(core, req_id, SyncResult.FAIL, addr)
                return
        if entry.owner is not None or entry.waiters or entry.revoking:
            self._respond(core, req_id, SyncResult.BUSY, addr)
            self._maybe_free(entry)
            return
        if (
            self.params.hwsync_opt
            and entry.hwsync_core is not None
            and entry.hwsync_core != self._core_of(core)
        ):
            # Another core may silently re-take the lock; a trylock
            # cannot wait out the revoke, so report BUSY conservatively.
            self._respond(core, req_id, SyncResult.BUSY, addr)
            return
        entry.waiters[core] = req_id
        self._complete_grant(entry, core)

    def _try_grant(self, entry: MSAEntry) -> None:
        if entry.owner is not None or entry.revoking or not entry.waiters:
            return
        core = self._select_waiter(entry)
        if (
            self.params.hwsync_opt
            and entry.hwsync_core is not None
            and entry.hwsync_core != self._core_of(core)
        ):
            # The last-granted core may silently re-acquire through its
            # HWSync bit; revoke it before handing the lock elsewhere.
            entry.revoking = True
            entry.pending_grant = core
            self._send_revoke(entry.hwsync_core, entry.addr)
            return
        self._complete_grant(entry, core)

    def _complete_grant(self, entry: MSAEntry, core: CoreId) -> None:
        req_id = entry.waiters.pop(core)
        entry.owner = core
        grant_hwsync = self.params.hwsync_opt
        if grant_hwsync:
            # The HWSync bit lives in the *core's* cache, so predictor
            # state tracks physical cores, not hardware threads.
            granted_core = self._core_of(core)
            entry.hwsync_core = granted_core
            if entry.last_owner == granted_core:
                entry.reuse_mode = True
            elif entry.last_owner is not None:
                entry.reuse_mode = False
            entry.last_owner = granted_core
        grants = self._lock_grants
        if grants is None:
            grants = self._lock_grants = self.stats.counter("lock_grants")
        grants.value += 1
        self._respond(
            core, req_id, SyncResult.SUCCESS, entry.addr, grant_hwsync=grant_hwsync
        )

    def _handle_unlock(self, addr: Address, core: CoreId, req_id: int) -> None:
        entry = self._typed_entry(addr, SyncType.LOCK)
        if entry is None:
            self._omu_decrement(addr)
            self._respond(core, req_id, SyncResult.FAIL, addr)
            return
        if entry.owner == core:
            entry.owner = None
            # The releasing core disarmed its own HWSync bit before this
            # UNLOCK became visible, so a handoff grant needs no revoke.
            entry.hwsync_core = None
            if (
                entry.waiters
                or not self.params.hwsync_opt
                or entry.revoking
                or not entry.reuse_mode
            ):
                # No re-arm: on a handoff the grant supersedes it; while
                # a revoke is in flight the pending acknowledgment will
                # clear hwsync_core and must not race a fresh grant of
                # the bit; and without observed same-core reuse the
                # entry is more valuable evictable than pinned.
                self._respond(core, req_id, SyncResult.SUCCESS, addr)
                self._try_grant(entry)
            else:
                # Reused idle lock: re-arm the releaser so its next LOCK
                # takes the silent fast path (section 5's target case).
                entry.hwsync_core = self._core_of(core)
                self._respond(core, req_id, SyncResult.SUCCESS, addr, rearm=True)
            self._maybe_free(entry)
            return
        if entry.owner is None:
            # The entry is idle in hardware (probation/idle-cached), so
            # this releaser must hold the lock in *software*: behave
            # exactly like an entry miss (default-to-software).
            self._omu_decrement(addr)
            self._respond(core, req_id, SyncResult.FAIL, addr)
            return
        # UNLOCK from a core that does not own the lock: the owning
        # thread was migrated (section 4.1.2).  Hand the lock's waiters
        # to software, after revoking any outstanding HWSync bit.
        self.stats.counter("migrated_unlocks").inc()
        if entry.hwsync_core is not None and not entry.revoking:
            # Clear the stale owner-of-record (the owning thread moved
            # away) and revoke the old core's HWSync bit before handing
            # everything to software.  If a *new* thread on the old core
            # silently re-acquires during the revoke window, the ack
            # handler detects it (owner re-set) and fails loudly -- a
            # corner the paper does not define behaviour for.
            entry.owner = None
            entry.revoking = True
            entry.pending_grant = None
            entry.teardown = (core, req_id)
            self._send_revoke(entry.hwsync_core, entry.addr)
            return
        self._finish_migrated_unlock(entry, core, req_id)

    def _finish_migrated_unlock(
        self, entry: MSAEntry, core: CoreId, req_id: int
    ) -> None:
        entry.owner = None
        entry.hwsync_core = None
        entry.reuse_mode = False
        self._respond(core, req_id, SyncResult.SUCCESS, entry.addr)
        if entry.pin_count > 0 or not self.omu_params.enabled:
            # The entry must persist (condvar-pinned, or the no-OMU
            # model), so handing the waiters to software would let a
            # later hardware hit race them.  The lock is known free
            # (the migrated owner just released it), so keep the
            # waiters in hardware and grant normally instead.
            self.stats.counter("migrated_unlock_kept_hw").inc()
            self._try_grant(entry)
            return
        # Hand everything to software: ABORT the waiters, charge the
        # OMU, and *delete* the entry -- a lingering entry would let
        # the next LOCK hit it and bypass the OMU while the aborted
        # waiters own the lock in software.
        aborted = list(entry.waiters.items())
        entry.waiters.clear()
        for wcore, wreq in aborted:
            self._respond(wcore, wreq, SyncResult.ABORT, entry.addr)
        if aborted:
            self._omu_increment(entry.addr, len(aborted))
        self._drop_entry(entry.addr, "migrated_unlock")

    def _handle_silent(self, addr: Address, core: CoreId) -> None:
        """LOCK_SILENT: requester ``core`` re-acquired the lock through
        its physical core's HWSync bit without waiting for our response
        (section 5)."""
        entry = self.entries.get(addr)
        if entry is None or entry.hwsync_core != self._core_of(core):
            raise ProtocolError(
                f"LOCK_SILENT from requester {core} for {addr:#x} without "
                f"a matching HWSync grant (entry={entry})"
            )
        if entry.owner is not None:
            raise ProtocolError(
                f"LOCK_SILENT from requester {core} but {addr:#x} is owned "
                f"by requester {entry.owner}"
            )
        entry.owner = core
        self.stats.counter("silent_acquires").inc()
        self.stats.counter("ops_hw").inc()

    def _handle_revoke_ack(self, addr: Address) -> None:
        entry = self.entries.get(addr)
        if entry is None or not entry.revoking:
            raise ProtocolError(f"stray revoke ack for {addr:#x}")
        entry.revoking = False
        reclaiming, entry.reclaiming = entry.reclaiming, False
        deferred, entry.reclaim_waiters = entry.reclaim_waiters, []
        teardown = getattr(entry, "teardown", None)
        if teardown is not None:
            del entry.teardown
            if entry.owner is not None:
                raise ProtocolError(
                    "silent re-acquire raced a migrated-owner UNLOCK "
                    f"teardown on {addr:#x}"
                )
            self._finish_migrated_unlock(entry, *teardown)
            self._replay_deferred(deferred)
            return
        if entry.owner is not None:
            # Retaken: a LOCK_SILENT arrived (FIFO: before this ack), so
            # the bit holder owns the lock again; deferred grantee waits.
            entry.pending_grant = None
            self.stats.counter("revokes_retaken").inc()
            self._replay_deferred(deferred)
            return
        entry.hwsync_core = None
        grantee = entry.pending_grant
        entry.pending_grant = None
        if grantee is not None and grantee in entry.waiters:
            self._complete_grant(entry, grantee)
            self._replay_deferred(deferred)
            return
        if reclaiming:
            self.stats.counter("reclaims_completed").inc()
        self._try_grant(entry)
        self._maybe_free(entry)
        # Requests queued behind this reclamation re-enter their
        # handlers now; if the entry freed they will allocate it.
        self._replay_deferred(deferred)

    def _replay_deferred(self, deferred) -> None:
        for replay in deferred:
            replay()

    # ------------------------------------------------------------------
    # Barriers (section 4.2)
    # ------------------------------------------------------------------
    def _handle_barrier(
        self, addr: Address, goal: int, core: CoreId, req_id: int
    ) -> None:
        entry = self._typed_entry(addr, SyncType.BARRIER)
        if entry is None:
            entry = self._try_allocate(
                addr,
                SyncType.BARRIER,
                replay=lambda: self._handle_barrier(addr, goal, core, req_id),
            )
            if entry is self.DEFERRED:
                return
            if entry is None:
                self._omu_increment(addr)
                self._respond(core, req_id, SyncResult.FAIL, addr)
                return
            entry.barrier_goal = goal
        elif entry.barrier_goal == 0:
            # Persistent entry (no-OMU mode) starting a new episode.
            entry.barrier_goal = goal
        elif entry.barrier_goal != goal:
            raise ProtocolError(
                f"barrier {addr:#x}: goal {goal} != active episode goal "
                f"{entry.barrier_goal}"
            )
        entry.waiters[core] = req_id
        if len(entry.waiters) >= entry.barrier_goal:
            self._release_barrier(entry)

    def _release_barrier(self, entry: MSAEntry) -> None:
        self.stats.counter("barrier_releases").inc()
        arrived = list(entry.waiters.items())
        entry.waiters.clear()
        entry.barrier_goal = 0
        for core, req_id in arrived:
            self._respond(core, req_id, SyncResult.SUCCESS, entry.addr)
        self._maybe_free(entry)

    # ------------------------------------------------------------------
    # Condition variables (section 4.3)
    # ------------------------------------------------------------------
    def _handle_cond_wait(
        self, cond_addr: Address, lock_addr: Address, core: CoreId, req_id: int
    ) -> None:
        if self._plane is not None and self._plane.is_degraded(
            self.home_of(lock_addr)
        ):
            # The mutex's home tile is degraded: the pin/wake protocol
            # cannot run (the lock will never be hardware-managed
            # again), so fail to software *here*, at the condvar home,
            # which balances this OMU charge with the runtime's FINISH.
            self._omu_increment(cond_addr)
            self._respond(core, req_id, SyncResult.FAIL, cond_addr)
            return
        entry = self._typed_entry(cond_addr, SyncType.CONDVAR)
        if entry is not None and entry.reserved:
            entry.reserve_queue.append(
                ("cond_wait", cond_addr, lock_addr, core, req_id)
            )
            return
        if entry is not None:
            if entry.hwqueue_empty() and entry.cond_lock_addr != lock_addr:
                # Persistent entry (no-OMU mode) being reused with a
                # different mutex: re-run the reservation handshake so
                # the new lock gets pinned.
                entry.reserved = True
                entry.cond_lock_addr = lock_addr
                entry.waiters[core] = req_id
                self._send_slice(
                    self.home_of(lock_addr),
                    "msa.unlock_pin",
                    lock_addr=lock_addr,
                    cond_addr=cond_addr,
                    waiter=core,
                )
                return
            entry.waiters[core] = req_id
            self._send_slice(
                self.home_of(entry.cond_lock_addr),
                "msa.unlock_onbehalf",
                lock_addr=entry.cond_lock_addr,
                waiter=core,
            )
            return
        # Miss: allocate only if both the condvar and its lock can be
        # handled in hardware (Figure 4).  The lock side is verified by
        # the UNLOCK&PIN round trip; locally we check OMU and capacity.
        allocated = self._try_allocate(
            cond_addr,
            SyncType.CONDVAR,
            replay=lambda: self._handle_cond_wait(cond_addr, lock_addr, core, req_id),
        )
        if allocated is self.DEFERRED:
            return
        if allocated is None:
            self._omu_increment(cond_addr)
            self._respond(core, req_id, SyncResult.FAIL, cond_addr)
            return
        allocated.reserved = True
        allocated.cond_lock_addr = lock_addr
        allocated.waiters[core] = req_id
        self._send_slice(
            self.home_of(lock_addr),
            "msa.unlock_pin",
            lock_addr=lock_addr,
            cond_addr=cond_addr,
            waiter=core,
        )

    def _handle_unlock_pin(
        self, lock_addr: Address, cond_addr: Address, waiter: CoreId, cond_home: TileId
    ) -> None:
        """UNLOCK&PIN from a condvar home: release ``waiter``'s lock and
        pin the lock's entry so it outlives empty HWQueues."""
        entry = self.entries.get(lock_addr)
        ok = entry is not None and entry.sync_type is SyncType.LOCK
        if ok and entry.owner != waiter:
            raise ProtocolError(
                f"UNLOCK&PIN: waiter core {waiter} does not own lock "
                f"{lock_addr:#x} (owner={entry.owner})"
            )
        if ok:
            entry.owner = None
            if entry.hwsync_core == self._core_of(waiter):
                entry.hwsync_core = None
            entry.pin_count += 1
            self.stats.counter("lock_pins").inc()
            self._try_grant(entry)
        self._send_slice(
            cond_home, "msa.unlock_pin_resp", cond_addr=cond_addr, ok=ok
        )

    def _handle_unlock_pin_resp(self, cond_addr: Address, ok: bool) -> None:
        entry = self.entries.get(cond_addr)
        if entry is None or not entry.reserved:
            raise ProtocolError(f"stray UNLOCK&PIN response for {cond_addr:#x}")
        queued = list(entry.reserve_queue)
        entry.reserve_queue.clear()
        if ok:
            entry.reserved = False
            for item in queued:
                self._replay_reserved(item)
            return
        # The lock is not in hardware: fail the reserving waiter(s).
        failed = list(entry.waiters.items())
        entry.waiters.clear()
        entry.reserved = False
        self._drop_entry(cond_addr, "reserve_fail", counter="cond_reserve_failures")
        for core, req_id in failed:
            self._omu_increment(cond_addr)
            self._respond(core, req_id, SyncResult.FAIL, cond_addr)
        for item in queued:
            self._replay_reserved(item)

    def _replay_reserved(self, item) -> None:
        if item[0] == "cond_wait":
            _, cond_addr, lock_addr, core, req_id = item
            self._handle_cond_wait(cond_addr, lock_addr, core, req_id)
        else:
            _, cond_addr, core, req_id, broadcast = item
            self._handle_cond_signal(cond_addr, core, req_id, broadcast)

    def _handle_unlock_onbehalf(self, lock_addr: Address, waiter: CoreId) -> None:
        entry = self.entries.get(lock_addr)
        if entry is None or entry.owner != waiter:
            raise ProtocolError(
                f"unlock-on-behalf of core {waiter} for {lock_addr:#x}: "
                f"lock not hardware-owned by the waiter (entry={entry})"
            )
        entry.owner = None
        # The waiter's core disarmed its HWSync bit when it issued
        # COND_WAIT, so the grant path needs no revoke.
        if entry.hwsync_core == self._core_of(waiter):
            entry.hwsync_core = None
        self._try_grant(entry)

    def _handle_cond_signal(
        self, addr: Address, core: CoreId, req_id: int, broadcast: bool
    ) -> None:
        entry = self._typed_entry(addr, SyncType.CONDVAR)
        if entry is not None and entry.reserved:
            entry.reserve_queue.append(("signal", addr, core, req_id, broadcast))
            return
        if entry is None:
            self._respond(core, req_id, SyncResult.FAIL, addr)
            return
        if not entry.waiters:
            # Persistent entry (no-OMU mode) with nobody waiting: the
            # signal is a hardware-handled no-op (POSIX semantics).
            self._respond(core, req_id, SyncResult.SUCCESS, addr)
            return
        self._respond(core, req_id, SyncResult.SUCCESS, addr)
        if broadcast:
            released = []
            while entry.waiters:
                wcore = self._select_waiter(entry)
                released.append((wcore, entry.waiters.pop(wcore)))
        else:
            wcore = self._select_waiter(entry)
            released = [(wcore, entry.waiters.pop(wcore))]
        self.stats.counter("cond_wakeups").inc(len(released))
        lock_home = self.home_of(entry.cond_lock_addr)
        entry_empty = not entry.waiters
        # In no-OMU mode the entry (and its lock pin) persists forever,
        # so the last wake-up only carries UNPIN when the entry frees.
        frees_entry = entry_empty and self.omu_params.enabled
        for index, (wcore, wreq) in enumerate(released):
            last = index == len(released) - 1
            self._send_slice(
                lock_home,
                "msa.lock_onbehalf",
                lock_addr=entry.cond_lock_addr,
                waiter=wcore,
                req_id=wreq,
                unpin=last and frees_entry,
            )
        if frees_entry:
            self._drop_entry(addr, "cond_drain")

    def _handle_lock_onbehalf(
        self, lock_addr: Address, waiter: CoreId, req_id: int, unpin: bool
    ) -> None:
        """LOCK (or LOCK&UNPIN) issued by a condvar home on behalf of a
        woken waiter; our response completes the waiter's COND_WAIT."""
        entry = self.entries.get(lock_addr)
        if entry is None or entry.sync_type is not SyncType.LOCK:
            raise ProtocolError(
                f"lock-on-behalf for {lock_addr:#x}: pinned lock entry missing"
            )
        if unpin:
            if entry.pin_count < 1:
                raise ProtocolError(f"LOCK&UNPIN on unpinned {lock_addr:#x}")
            entry.pin_count -= 1
            self.stats.counter("lock_unpins").inc()
        entry.waiters[waiter] = req_id
        self._try_grant(entry)

    def _handle_unpin(self, lock_addr: Address) -> None:
        entry = self.entries.get(lock_addr)
        if entry is None or entry.pin_count < 1:
            raise ProtocolError(f"unpin of unpinned lock {lock_addr:#x}")
        entry.pin_count -= 1
        self.stats.counter("lock_unpins").inc()
        self._maybe_free(entry)

    # ------------------------------------------------------------------
    # Suspension / migration (sections 4.1.2, 4.2.2, 4.3.2)
    # ------------------------------------------------------------------
    def _handle_suspend(self, addr: Address, core: CoreId) -> None:
        entry = self.entries.get(addr)
        if entry is None:
            return  # Raced with a release/grant already in flight.
        if entry.sync_type is SyncType.LOCK:
            # Dequeue the core; its LOCK was squashed core-side and will
            # re-execute after the thread resumes.
            if core in entry.waiters:
                entry.waiters.pop(core)
                self.stats.counter("lock_suspends").inc()
                self._maybe_free(entry)
        elif entry.sync_type is SyncType.BARRIER:
            # Force the whole barrier episode to software.
            aborted = list(entry.waiters.items())
            if not aborted:
                return
            entry.waiters.clear()
            entry.barrier_goal = 0
            self.stats.counter("barrier_suspends").inc()
            for wcore, wreq in aborted:
                self._respond(wcore, wreq, SyncResult.ABORT, addr)
            self._omu_increment(addr, len(aborted))
            self._maybe_free(entry)
        else:  # condvar
            if core not in entry.waiters:
                return  # Raced with a signal; wake-up response in flight.
            wreq = entry.waiters.pop(core)
            self.stats.counter("cond_suspends").inc()
            self._respond(core, wreq, SyncResult.ABORT, addr)
            self._omu_increment(addr)
            if (
                not entry.waiters
                and not entry.reserved
                and self.omu_params.enabled
            ):
                self._send_slice(
                    self.home_of(entry.cond_lock_addr),
                    "msa.unpin",
                    lock_addr=entry.cond_lock_addr,
                )
                self._drop_entry(addr, "cond_suspend")

    # ------------------------------------------------------------------
    # Introspection for tests and invariant checks
    # ------------------------------------------------------------------
    def entry_for(self, addr: Address) -> Optional[MSAEntry]:
        return self.entries.get(addr)

    def check_invariants(self) -> None:
        for entry in self.entries.values():
            if entry.pin_count < 0:
                raise ProtocolError(f"negative pin count: {entry}")
            if entry.sync_type is SyncType.LOCK and entry.barrier_goal:
                raise ProtocolError(f"lock entry with barrier goal: {entry}")
            if (
                entry.sync_type is not SyncType.LOCK
                and entry.owner is not None
            ):
                raise ProtocolError(f"non-lock entry with owner: {entry}")
        if (
            not self.params.is_infinite
            and len(self.entries) > self.params.entries_per_tile
        ):
            raise ProtocolError(
                f"slice {self.tile} holds {len(self.entries)} entries, "
                f"capacity {self.params.entries_per_tile}"
            )
