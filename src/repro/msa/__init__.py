"""The paper's core contribution: the Minimalistic Synchronization
Accelerator (MSA) and its Overflow Management Unit (OMU).

Each tile hosts one :class:`~repro.msa.slice.MSASlice` holding a (very)
small number of :class:`~repro.msa.entry.MSAEntry` records -- one per
currently-active synchronization address homed at that tile -- plus an
:class:`~repro.msa.omu.OverflowManagementUnit` of untagged counters that
track software-side synchronization activity and arbitrate safe
transitions between hardware and software implementations.

Cores talk to the accelerator through the per-core
:class:`~repro.msa.isa.SyncUnit`, which implements the paper's ISA
extension (LOCK/UNLOCK/BARRIER/COND_WAIT/COND_SIGNAL/COND_BCAST plus
FINISH and SUSPEND) with SUCCESS/FAIL/ABORT results, the MSA-0
always-fail mode, and the HWSync-bit silent re-acquire optimization.
"""

from repro.msa.entry import MSAEntry
from repro.msa.omu import OverflowManagementUnit, CountingBloomOmu, make_omu
from repro.msa.slice import MSASlice
from repro.msa.isa import SyncUnit, SQUASHED
from repro.msa.ideal import IdealSyncOracle

__all__ = [
    "MSAEntry",
    "OverflowManagementUnit",
    "CountingBloomOmu",
    "make_omu",
    "MSASlice",
    "SyncUnit",
    "SQUASHED",
    "IdealSyncOracle",
]
