"""MiSAR reproduction: minimalistic synchronization accelerator (MSA) with
resource overflow management (OMU) on a simulated tiled many-core.

The package reproduces the system from Liang & Prvulovic, "MiSAR:
Minimalistic Synchronization Accelerator with Resource Overflow
Management" (ISCA 2015).  It provides:

* a discrete-event, cycle-approximate simulator of a tiled many-core chip
  (:mod:`repro.sim`, :mod:`repro.noc`, :mod:`repro.mem`),
* the paper's core contribution -- the MSA accelerator slices and the
  Overflow Management Unit (:mod:`repro.msa`),
* a thread runtime with the hybrid hardware/software synchronization
  algorithms of the paper (:mod:`repro.runtime`),
* workloads and the experiment harness that regenerate every figure and
  table of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.harness`).

Quickstart (the :mod:`repro.api` facade is the front door)::

    import repro

    machine = repro.build("msa-omu-2", cores=16)
    result = repro.run("msa-omu-2", "streamcluster", cores=16, scale=0.5)
    points = repro.sweep(
        configs=("pthread", "msa-omu-2"),
        workloads=("canneal", "swaptions"),
        workers=4,
    )
    print(result.cycles, result.msa_coverage)
"""

from repro.common.types import SyncResult, SyncType
from repro.common.params import MachineParams, MSAParams, OMUParams

__all__ = [
    "SyncResult",
    "SyncType",
    "MachineParams",
    "MSAParams",
    "OMUParams",
    "api",
    "build",
    "run",
    "sweep",
    "bench",
    "observe",
    "report",
    "fsck",
    "chaos_harness",
    "submit",
    "status",
    "wait",
    "fetch",
    "RunResult",
    "__version__",
]

__version__ = "1.3.0"

#: Facade names resolved lazily so ``import repro`` stays light (the
#: harness pulls in the whole machine model) and free of import cycles.
# ("serve" and "traffic" are deliberately absent: ``repro.serve`` and
# ``repro.traffic`` are subpackages; the corresponding verbs live at
# ``repro.api.serve`` / ``repro.api.traffic``.)
_API_NAMES = (
    "build", "run", "sweep", "bench", "observe", "report",
    "fsck", "chaos_harness", "submit", "status", "wait",
    "fetch", "RunResult", "Engine", "JobSpec",
)


def __getattr__(name):
    if name == "api":
        import repro.api as api

        return api
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | {"api"} | set(_API_NAMES))
