"""MiSAR reproduction: minimalistic synchronization accelerator (MSA) with
resource overflow management (OMU) on a simulated tiled many-core.

The package reproduces the system from Liang & Prvulovic, "MiSAR:
Minimalistic Synchronization Accelerator with Resource Overflow
Management" (ISCA 2015).  It provides:

* a discrete-event, cycle-approximate simulator of a tiled many-core chip
  (:mod:`repro.sim`, :mod:`repro.noc`, :mod:`repro.mem`),
* the paper's core contribution -- the MSA accelerator slices and the
  Overflow Management Unit (:mod:`repro.msa`),
* a thread runtime with the hybrid hardware/software synchronization
  algorithms of the paper (:mod:`repro.runtime`),
* workloads and the experiment harness that regenerate every figure and
  table of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.harness`).

Quickstart::

    from repro.harness import build_machine, run_workload
    from repro.workloads.kernels import streamcluster

    machine = build_machine("msa-omu-2", n_cores=16)
    result = run_workload(machine, streamcluster.make(n_threads=16))
    print(result.cycles, result.msa_coverage)
"""

from repro.common.types import SyncResult, SyncType
from repro.common.params import MachineParams, MSAParams, OMUParams

__all__ = [
    "SyncResult",
    "SyncType",
    "MachineParams",
    "MSAParams",
    "OMUParams",
    "__version__",
]

__version__ = "1.0.0"
